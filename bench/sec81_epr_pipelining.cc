/**
 * @file
 * Section 8.1: pipelined just-in-time EPR distribution.
 *
 * Sweeps the lookahead window on a teleport-heavy workload through
 * the "planar" engine backend — one grid with the EPR-window axis
 * (SweepGrid::epr_windows) on the parallel driver, with channel
 * bandwidth constrained so prefetch-all pays queueing — and reports
 * the live-EPR footprint (space) against schedule length (time).
 * The workload is a caller-built Circuit AppPoint (the generated
 * SHA-1 round function built once, shared by every window point via
 * its content fingerprint).  All points land in
 * BENCH_sec81_epr_pipelining.json.
 *
 * Expected shape: a well-chosen window cuts the EPR qubit footprint
 * by an order of magnitude or more versus prefetch-all (the paper
 * reports up to ~24x) while adding only a few percent of latency;
 * too small a window starves teleports instead.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    // SHA-1 keeps words migrating between SIMD regions, giving a
    // teleport stream spread across the whole run.  Window 0 is the
    // prefetch-all baseline (kept first: the table normalizes
    // against it).  One grid, windows as an axis: the circuit is
    // generated and decomposed once and the per-window points share
    // its prepare artifact.
    const std::vector<int> windows{0, 256, 64, 16, 8, 4, 2, 1};

    engine::SweepGrid grid;
    grid.apps = {engine::AppPoint(
        std::make_shared<const circuit::Circuit>(
            apps::generate(apps::AppKind::SHA1, {16, 20})),
        "SHA-1")};
    grid.backends = {engine::backends::planar};
    grid.distances = {5};
    grid.epr_windows = windows;
    grid.base.epr_bandwidth = 32;

    engine::SweepOptions opts;
    opts.num_threads = -1;
    opts.json_path = "BENCH_sec81_epr_pipelining.json";
    opts.title = "Section 8.1: EPR lookahead-window sweep";
    std::vector<engine::SweepPoint> points =
        engine::SweepDriver().run(grid, opts);

    const engine::Metrics &all = points.front().metrics;
    fatalIf(points.front().epr_window != 0,
            "expected the prefetch-all point first");
    Table t("Section 8.1: EPR lookahead-window sweep (SHA-1, "
            + std::to_string(
                  static_cast<uint64_t>(all.extra("teleports")))
            + " teleports over "
            + std::to_string(static_cast<uint64_t>(all.extra("steps")))
            + " steps)");
    t.header({"window (steps)", "peak live EPRs", "avg live EPRs",
              "stall cycles", "schedule cycles",
              "qubit saving vs prefetch-all", "latency overhead"});
    for (const engine::SweepPoint &p : points) {
        const engine::Metrics &m = p.metrics;
        double avg = m.extra("avg_live_eprs");
        double saving =
            avg > 0 ? all.extra("avg_live_eprs") / avg : 0.0;
        double overhead = static_cast<double>(m.schedule_cycles)
                / static_cast<double>(all.schedule_cycles)
            - 1.0;
        t.addRow(p.epr_window == 0 ? std::string("prefetch-all")
                                   : std::to_string(p.epr_window),
                 static_cast<uint64_t>(m.extra("peak_live_eprs")),
                 Table::fixed(avg, 2),
                 static_cast<uint64_t>(m.extra("stall_cycles")),
                 m.schedule_cycles, Table::fixed(saving, 1),
                 Table::fixed(100 * overhead, 1) + "%");
    }
    t.print(std::cout);

    std::cout
        << "Shape check: a mid-sized window keeps latency within a "
           "few percent of\nprefetch-all while shrinking the live-"
           "EPR footprint sharply (paper: ~24x qubit\nsavings at "
           "<= ~4% latency); a window of 1 starves teleports "
           "instead.\n";
    std::cout << "wrote " << opts.json_path << "\n";
    return 0;
}
