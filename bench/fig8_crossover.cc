/**
 * @file
 * Figure 8: double-defect resource usage normalized to the planar
 * baseline, for (a) the serial SQ application and (b) the parallel
 * IM application, across computation sizes at pP = 1e-8.
 *
 * Expected shape: the qubit ratio stays above 1 (planar tiles are
 * smaller); the time ratio falls with size (braids are distance-
 * insensitive, swap chains are not); planar wins below the
 * cross-over of the qubits x time product and double-defect wins
 * above it; the IM cross-over lands decades later than SQ's because
 * braid congestion hurts the parallel app (Section 7.2).
 */

#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "estimate/crossover.h"

namespace {

using namespace qsurf;

void
sweep(apps::AppKind app)
{
    qec::Technology tech = qec::tech_points::futureOptimistic();
    estimate::ResourceModel model(app, tech);

    Table t(std::string("Figure 8: double-defect / planar ratios, ")
            + apps::appSpec(app).name + " (pP = 1e-8)");
    t.header({"size (1/pL)", "qubit ratio", "time ratio",
              "qubitsXtime", "favored"});
    for (double kq = 1e2; kq <= 1e24; kq *= 100) {
        auto r = model.ratios(kq);
        t.addRow(Table::num(kq), Table::fixed(r.qubits, 2),
                 Table::fixed(r.time, 2),
                 Table::fixed(r.spacetime, 2),
                 r.spacetime > 1 ? "planar" : "double-defect");
    }
    t.print(std::cout);

    auto x = estimate::crossoverSize(model);
    std::cout << apps::appSpec(app).name << " cross-over point: "
              << (x ? Table::num(*x) : std::string("beyond 1e24"))
              << " logical ops\n\n";
}

} // namespace

int
main()
{
    setQuiet(true);
    sweep(apps::AppKind::SQ);
    sweep(apps::AppKind::IsingFull);

    qec::Technology tech = qec::tech_points::futureOptimistic();
    auto sq = estimate::crossoverSize(
        estimate::ResourceModel(apps::AppKind::SQ, tech));
    auto im = estimate::crossoverSize(
        estimate::ResourceModel(apps::AppKind::IsingFull, tech));
    if (sq && im)
        std::cout << "Shape check: IM cross-over / SQ cross-over = "
                  << Table::num(*im / *sq)
                  << "x (paper: the IM cross-over occurs at a much "
                     "larger computation size).\n";
    return 0;
}
