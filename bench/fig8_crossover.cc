/**
 * @file
 * Figure 8: double-defect resource usage normalized to the planar
 * baseline, for (a) the serial SQ application and (b) the parallel
 * IM application, across computation sizes at pP = 1e-8.
 *
 * One declarative sweep grid (app x size x model backend) on the
 * engine's parallel sweep driver.  Emits BENCH_fig8_crossover.json
 * alongside the tables.
 *
 * Expected shape: the qubit ratio stays above 1 (planar tiles are
 * smaller); the time ratio falls with size (braids are distance-
 * insensitive, swap chains are not); planar wins below the
 * cross-over of the qubits x time product and double-defect wins
 * above it; the IM cross-over lands decades later than SQ's because
 * braid congestion hurts the parallel app (Section 7.2).
 */

#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "estimate/crossover.h"

int
main()
{
    using namespace qsurf;
    setQuiet(true);

    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {}, ""},
                 {apps::AppKind::IsingFull, {}, ""}};
    grid.backends = {engine::backends::planar_model,
                     engine::backends::double_defect_model};
    grid.sizes.clear();
    for (double kq = 1e2; kq <= 1e24; kq *= 100)
        grid.sizes.push_back(kq);
    grid.base.tech = qec::tech_points::futureOptimistic();

    engine::SweepOptions opts;
    opts.num_threads = engine::defaultThreads();
    opts.title = "Figure 8: double-defect / planar ratios";
    opts.json_path = "BENCH_fig8_crossover.json";
    auto results = engine::SweepDriver().run(grid, opts);

    // Results are app-major, then size-major, with the planar model
    // first and the double-defect model second at each size.
    size_t per_app = grid.sizes.size() * grid.backends.size();
    for (size_t a = 0; a < grid.apps.size(); ++a) {
        apps::AppKind app = grid.apps[a].kind;
        Table t(std::string(
                    "Figure 8: double-defect / planar ratios, ")
                + apps::appSpec(app).name + " (pP = 1e-8)");
        t.header({"size (1/pL)", "qubit ratio", "time ratio",
                  "qubitsXtime", "favored"});
        for (size_t s = 0; s < grid.sizes.size(); ++s) {
            const engine::Metrics &pl =
                results[a * per_app + 2 * s].metrics;
            const engine::Metrics &dd =
                results[a * per_app + 2 * s + 1].metrics;
            double qubits = dd.physical_qubits / pl.physical_qubits;
            double time = dd.seconds / pl.seconds;
            double spacetime = dd.spaceTime() / pl.spaceTime();
            t.addRow(Table::num(grid.sizes[s]),
                     Table::fixed(qubits, 2), Table::fixed(time, 2),
                     Table::fixed(spacetime, 2),
                     spacetime > 1 ? "planar" : "double-defect");
        }
        t.print(std::cout);

        auto x = estimate::crossoverSize(
            estimate::ResourceModel(app, grid.base.tech));
        std::cout << apps::appSpec(app).name << " cross-over point: "
                  << (x ? Table::num(*x) : std::string("beyond 1e24"))
                  << " logical ops\n\n";
    }

    auto sq = estimate::crossoverSize(
        estimate::ResourceModel(apps::AppKind::SQ, grid.base.tech));
    auto im = estimate::crossoverSize(estimate::ResourceModel(
        apps::AppKind::IsingFull, grid.base.tech));
    if (sq && im)
        std::cout << "Shape check: IM cross-over / SQ cross-over = "
                  << Table::num(*im / *sq)
                  << "x (paper: the IM cross-over occurs at a much "
                     "larger computation size).\n";
    std::cout << "wrote " << opts.json_path << "\n";
    return 0;
}
