/**
 * @file
 * Google-benchmark microbenchmarks and ablations backing the design
 * choices DESIGN.md calls out: routing strategy, layout
 * optimization, drop/re-inject, and the partitioner itself.
 */

#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "common/logging.h"
#include "common/rng.h"
#include "network/route.h"
#include "partition/layout.h"

namespace {

using namespace qsurf;

circuit::Circuit
braidWorkload()
{
    apps::GenOptions opts;
    opts.problem_size = 24;
    opts.max_iterations = 2;
    return circuit::decompose(
        apps::generate(apps::AppKind::IsingSemi, opts));
}

void
BM_XyRoute(benchmark::State &state)
{
    auto span = static_cast<int>(state.range(0));
    for (auto _ : state) {
        network::Path p =
            network::xyRoute(Coord{0, 0}, Coord{span, span});
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_XyRoute)->Arg(8)->Arg(32)->Arg(128);

void
BM_AdaptiveRouteEmptyMesh(benchmark::State &state)
{
    auto span = static_cast<int>(state.range(0));
    network::Mesh mesh(span + 1, span + 1);
    for (auto _ : state) {
        auto p = network::adaptiveRoute(mesh, Coord{0, 0},
                                        Coord{span, span}, 1);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_AdaptiveRouteEmptyMesh)->Arg(8)->Arg(32)->Arg(64);

void
BM_Bisect(benchmark::State &state)
{
    auto n = static_cast<int>(state.range(0));
    partition::Graph g(n);
    Rng edges(7);
    for (int i = 0; i < 4 * n; ++i) {
        auto u = static_cast<int>(edges.below(n));
        auto v = static_cast<int>(edges.below(n));
        if (u != v)
            g.addEdge(u, v, 1 + static_cast<int64_t>(edges.below(9)));
    }
    for (auto _ : state) {
        Rng rng(13);
        auto cut = partition::bisect(g, rng);
        benchmark::DoNotOptimize(cut);
    }
}
BENCHMARK(BM_Bisect)->Arg(64)->Arg(512)->Arg(2048);

void
BM_GridLayout(benchmark::State &state)
{
    auto n = static_cast<int>(state.range(0));
    partition::Graph g(n);
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1, 10);
    auto [w, h] = partition::gridShape(n);
    for (auto _ : state) {
        auto layout = partition::layoutOnGrid(g, w, h, 3);
        benchmark::DoNotOptimize(layout);
    }
}
BENCHMARK(BM_GridLayout)->Arg(64)->Arg(256)->Arg(1024);

/** Ablation: braid scheduling under each policy. */
void
BM_BraidPolicy(benchmark::State &state)
{
    static const circuit::Circuit circ = braidWorkload();
    auto policy = static_cast<braid::Policy>(state.range(0));
    braid::BraidOptions opts;
    opts.code_distance = 3;
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto r = braid::scheduleBraids(circ, policy, opts);
        cycles = r.schedule_cycles;
        benchmark::DoNotOptimize(r);
    }
    state.counters["schedule_cycles"] =
        static_cast<double>(cycles);
}
BENCHMARK(BM_BraidPolicy)->DenseRange(0, braid::num_policies - 1);

/** Ablation: route adaptivity and drop/re-inject on/off. */
void
BM_BraidAdaptivityAblation(benchmark::State &state)
{
    static const circuit::Circuit circ = braidWorkload();
    bool enable = state.range(0) != 0;
    braid::BraidOptions opts;
    opts.code_distance = 3;
    if (!enable) {
        // Effectively disable YX fallback, BFS detours and drops.
        opts.adapt_timeout = 1 << 20;
        opts.bfs_timeout = 1 << 20;
        opts.drop_timeout = 1 << 20;
    }
    uint64_t cycles = 0;
    for (auto _ : state) {
        auto r = braid::scheduleBraids(circ, braid::Policy::Combined,
                                       opts);
        cycles = r.schedule_cycles;
        benchmark::DoNotOptimize(r);
    }
    state.counters["schedule_cycles"] =
        static_cast<double>(cycles);
}
BENCHMARK(BM_BraidAdaptivityAblation)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char **argv)
{
    qsurf::setQuiet(true);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
