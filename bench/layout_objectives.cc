/**
 * @file
 * Surgery-aware layout objectives over the Figure-8 application
 * pair: the serial SQ workload and the parallel IM workload, across
 * code distances, comparing the patch-layout objectives —
 * braid-manhattan (the Section 6.2 objective historically reused for
 * surgery), corridor (bisection seed refined against the
 * around-patch corridor length), and corridor+lanes (corridor
 * objective plus dedicated ancilla through-lanes sized into the
 * mesh) — on the simulated surgery and hybrid backends.
 *
 * Expected shape: merge/split corridors route *around* live patches,
 * so optimizing the braid objective leaves routing slack on the
 * table (the ROADMAP's "Surgery-aware layout" item); the corridor
 * objectives should shrink simulated surgery schedule_cycles on a
 * majority of design points while the pure-braid backends (which
 * keep the Manhattan objective) are untouched.  Emits
 * BENCH_layout.json recording, per design point, the schedule length
 * under every objective plus the layout/corridor costs, and the
 * majority-win flag the acceptance checks read.
 *
 * Pass --smoke for the CI-sized subset of the grid.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "partition/layout.h"

int
main(int argc, char **argv)
{
    using namespace qsurf;
    setQuiet(true);
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    // The Figure-8 application pair at simulatable sizes, over the
    // same d axis the favorability and hybrid sweeps use, with the
    // full layout-objective axis on the two patch-machine backends.
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::IsingFull, {12, 2}, ""}};
    grid.backends = {engine::backends::surgery_sim,
                     engine::backends::hybrid_mixed};
    grid.policies = {6};
    grid.layout_objectives = {0, 1, 2};
    grid.distances = smoke ? std::vector<int>{3, 5}
                           : std::vector<int>{3, 5, 7, 9};
    grid.base.lane_spacing = 3;
    grid.base.seed = 1234;
    grid.base.tech = qec::tech_points::futureOptimistic();

    engine::SweepOptions opts;
    opts.num_threads = engine::defaultThreads();
    auto results = engine::SweepDriver().run(grid, opts);

    // Index results: per (app, d, backend), one run per objective.
    struct Point
    {
        std::string app;
        std::string backend;
        int d = 0;
        uint64_t cycles[partition::num_layout_objectives] = {};
        const engine::Metrics
            *metrics[partition::num_layout_objectives] = {};

        uint64_t
        bestCorridor() const
        {
            return std::min(cycles[1], cycles[2]);
        }
    };
    std::vector<Point> points;
    for (const engine::SweepPoint &r : results) {
        auto it = std::find_if(
            points.begin(), points.end(), [&](const Point &p) {
                return p.app == r.app_name && p.backend == r.backend
                    && p.d == r.metrics.code_distance;
            });
        if (it == points.end()) {
            points.push_back(Point{r.app_name, r.backend,
                                   r.metrics.code_distance,
                                   {},
                                   {}});
            it = points.end() - 1;
        }
        it->cycles[r.layout_objective] = r.metrics.schedule_cycles;
        it->metrics[r.layout_objective] = &r.metrics;
    }

    // The acceptance flag: the corridor objectives against the
    // braid-manhattan baseline on the simulated surgery backend.
    int surgery_points = 0, surgery_wins = 0, hybrid_wins = 0,
        hybrid_points = 0;
    Table t("Patch-layout objectives (schedule cycles)");
    t.header({"app", "backend", "d", "manhattan", "corridor",
              "corr+lanes", "best/manhattan"});
    for (const Point &p : points) {
        bool wins = p.bestCorridor() < p.cycles[0];
        if (p.backend == engine::backends::surgery_sim) {
            ++surgery_points;
            surgery_wins += wins;
        } else {
            ++hybrid_points;
            hybrid_wins += wins;
        }
        t.addRow(p.app, p.backend, Table::num(p.d),
                 Table::num(p.cycles[0]), Table::num(p.cycles[1]),
                 Table::num(p.cycles[2]),
                 Table::fixed(static_cast<double>(p.bestCorridor())
                                  / static_cast<double>(p.cycles[0]),
                              3));
    }
    t.print(std::cout);
    bool surgery_majority = 2 * surgery_wins > surgery_points;
    std::cout << "corridor objectives beat braid-manhattan on "
              << surgery_wins << " of " << surgery_points
              << " surgery design points ("
              << (surgery_majority ? "majority" : "NO majority")
              << ") and " << hybrid_wins << " of " << hybrid_points
              << " hybrid points\n";

    const char *json_path = "BENCH_layout.json";
    std::ofstream os(json_path);
    fatalIf(!os, "cannot open '", json_path, "' for writing");
    {
        JsonWriter j(os);
        j.beginObject();
        j.field("title",
                "Patch-layout objectives over the fig8 application "
                "pair");
        j.field("smoke", smoke);
        j.field("surgery_points",
                static_cast<uint64_t>(surgery_points));
        j.field("surgery_corridor_wins",
                static_cast<uint64_t>(surgery_wins));
        j.field("surgery_majority", surgery_majority);
        j.field("hybrid_points", static_cast<uint64_t>(hybrid_points));
        j.field("hybrid_corridor_wins",
                static_cast<uint64_t>(hybrid_wins));
        j.key("results");
        j.beginArray();
        for (const Point &p : points) {
            j.beginObject();
            j.field("app", p.app);
            j.field("backend", p.backend);
            j.field("code_distance", p.d);
            for (int o = 0; o < partition::num_layout_objectives;
                 ++o) {
                const engine::Metrics *m = p.metrics[o];
                j.key(partition::layoutObjectiveName(
                    partition::layoutObjective(o)));
                j.beginObject();
                j.field("schedule_cycles", p.cycles[o]);
                j.field("critical_path_cycles",
                        m->critical_path_cycles);
                j.field("layout_cost", m->extra("layout_cost"));
                j.field("corridor_cost", m->extra("corridor_cost"));
                j.field("lane_area_factor",
                        m->extra("lane_area_factor", 1.0));
                j.field("transpose_fallbacks",
                        m->extra("transpose_fallbacks"));
                j.field("bfs_detours", m->extra("bfs_detours"));
                j.field("drops", m->extra("drops"));
                j.field("physical_qubits", m->physical_qubits);
                j.endObject();
            }
            j.field("corridor_beats_manhattan",
                    p.bestCorridor() < p.cycles[0]);
            j.endObject();
        }
        j.endArray();
        j.endObject();
        os << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    // The smoke grid is a CI liveness check, not the acceptance
    // measurement; only the full grid enforces the majority win.
    return smoke || surgery_majority ? 0 : 1;
}
