/**
 * @file
 * Unit tests for the dependence DAG: per-wire edges, roots/sinks,
 * diamond dependencies and duplicate-edge suppression.
 */

#include <gtest/gtest.h>

#include "circuit/dag.h"

namespace qsurf::circuit {
namespace {

TEST(Dag, SerialChainOnOneQubit)
{
    Circuit c(1);
    for (int i = 0; i < 4; ++i)
        c.addGate(GateKind::H, 0);
    Dag dag(c);
    EXPECT_EQ(dag.size(), 4);
    EXPECT_EQ(dag.roots(), std::vector<int>{0});
    EXPECT_EQ(dag.sinks(), std::vector<int>{3});
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(dag.preds(i), std::vector<int>{i - 1});
}

TEST(Dag, IndependentGatesAreAllRootsAndSinks)
{
    Circuit c(3);
    for (int q = 0; q < 3; ++q)
        c.addGate(GateKind::X, q);
    Dag dag(c);
    EXPECT_EQ(dag.roots().size(), 3u);
    EXPECT_EQ(dag.sinks().size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(dag.preds(i).empty());
        EXPECT_TRUE(dag.succs(i).empty());
    }
}

TEST(Dag, TwoQubitGateJoinsWires)
{
    Circuit c(2);
    c.addGate(GateKind::H, 0);   // 0
    c.addGate(GateKind::H, 1);   // 1
    c.addGate(GateKind::CNOT, 0, 1); // 2 depends on both
    c.addGate(GateKind::X, 0);   // 3 depends on 2
    Dag dag(c);
    EXPECT_EQ(dag.preds(2), (std::vector<int>{0, 1}));
    EXPECT_EQ(dag.preds(3), std::vector<int>{2});
    EXPECT_EQ(dag.succs(0), std::vector<int>{2});
}

TEST(Dag, SharedPredecessorEdgeNotDuplicated)
{
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1); // 0
    c.addGate(GateKind::CNOT, 0, 1); // 1: both wires come from 0
    Dag dag(c);
    // One edge despite two shared qubits.
    EXPECT_EQ(dag.preds(1), std::vector<int>{0});
    EXPECT_EQ(dag.succs(0), std::vector<int>{1});
}

TEST(Dag, InDegreesMatchPreds)
{
    Circuit c(2);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::H, 1);
    c.addGate(GateKind::CNOT, 0, 1);
    Dag dag(c);
    std::vector<int> deg = dag.inDegrees();
    EXPECT_EQ(deg, (std::vector<int>{0, 0, 2}));
}

TEST(Dag, DiamondDependency)
{
    Circuit c(3);
    c.addGate(GateKind::CNOT, 0, 1);  // 0
    c.addGate(GateKind::H, 0);        // 1 (left arm)
    c.addGate(GateKind::H, 1);        // 2 (right arm)
    c.addGate(GateKind::CNOT, 0, 1);  // 3 (join)
    Dag dag(c);
    EXPECT_EQ(dag.preds(3), (std::vector<int>{1, 2}));
    EXPECT_EQ(dag.succs(0), (std::vector<int>{1, 2}));
}

TEST(Dag, TopologicalOrderIsProgramOrder)
{
    Circuit c(2);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::CNOT, 0, 1);
    Dag dag(c);
    EXPECT_EQ(dag.topologicalOrder(), (std::vector<int>{0, 1}));
}

TEST(Dag, EmptyCircuit)
{
    Circuit c(2);
    Dag dag(c);
    EXPECT_EQ(dag.size(), 0);
    EXPECT_TRUE(dag.roots().empty());
    EXPECT_TRUE(dag.sinks().empty());
}

} // namespace
} // namespace qsurf::circuit
