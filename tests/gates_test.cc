/**
 * @file
 * Parameterized tests of the gate metadata table: every GateKind has
 * consistent arity, name round trip and classification flags.
 */

#include <gtest/gtest.h>

#include "circuit/gates.h"

namespace qsurf::circuit {
namespace {

const std::vector<GateKind> &
allKinds()
{
    static const std::vector<GateKind> kinds{
        GateKind::H,     GateKind::X,       GateKind::Y,
        GateKind::Z,     GateKind::S,       GateKind::Sdag,
        GateKind::T,     GateKind::Tdag,    GateKind::Rz,
        GateKind::CNOT,  GateKind::CZ,      GateKind::Swap,
        GateKind::Toffoli, GateKind::PrepZ, GateKind::PrepX,
        GateKind::MeasZ, GateKind::MeasX,
    };
    return kinds;
}

class GateKindTest : public ::testing::TestWithParam<GateKind>
{
};

TEST_P(GateKindTest, NameRoundTrips)
{
    GateKind kind = GetParam();
    auto back = gateFromName(gateName(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
}

TEST_P(GateKindTest, ArityIsSane)
{
    int arity = gateArity(GetParam());
    EXPECT_GE(arity, 1);
    EXPECT_LE(arity, 3);
}

TEST_P(GateKindTest, FlagsAreConsistent)
{
    GateKind kind = GetParam();
    // A gate cannot be both a measurement and a preparation.
    EXPECT_FALSE(isMeasurement(kind) && isPreparation(kind));
    // Magic-state consumers are not Clifford.
    if (consumesMagicState(kind))
        EXPECT_FALSE(isClifford(kind));
    // Gates needing decomposition are never magic consumers directly.
    if (needsDecomposition(kind))
        EXPECT_FALSE(consumesMagicState(kind));
}

INSTANTIATE_TEST_SUITE_P(AllGates, GateKindTest,
                         ::testing::ValuesIn(allKinds()));

TEST(Gates, CountMatchesTable)
{
    EXPECT_EQ(static_cast<int>(allKinds().size()), num_gate_kinds);
}

TEST(Gates, SpecificArities)
{
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::CNOT), 2);
    EXPECT_EQ(gateArity(GateKind::Toffoli), 3);
    EXPECT_EQ(gateArity(GateKind::MeasZ), 1);
}

TEST(Gates, MagicConsumers)
{
    EXPECT_TRUE(consumesMagicState(GateKind::T));
    EXPECT_TRUE(consumesMagicState(GateKind::Tdag));
    EXPECT_FALSE(consumesMagicState(GateKind::S));
}

TEST(Gates, DecompositionSet)
{
    EXPECT_TRUE(needsDecomposition(GateKind::Toffoli));
    EXPECT_TRUE(needsDecomposition(GateKind::Rz));
    EXPECT_FALSE(needsDecomposition(GateKind::CNOT));
}

TEST(Gates, UnknownNameReturnsNullopt)
{
    EXPECT_FALSE(gateFromName("NOTAGATE").has_value());
    EXPECT_FALSE(gateFromName("h").has_value()); // case sensitive
    EXPECT_FALSE(gateFromName("").has_value());
}

} // namespace
} // namespace qsurf::circuit
