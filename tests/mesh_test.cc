/**
 * @file
 * Circuit-switched mesh tests: exclusive claim/release semantics
 * (braids cannot cross — Section 4.1), availability queries and
 * utilization accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "network/mesh.h"

namespace qsurf::network {
namespace {

Path
straightPath(int y, int x0, int x1)
{
    Path p;
    for (int x = x0; x <= x1; ++x)
        p.nodes.push_back(Coord{x, y});
    return p;
}

TEST(Mesh, DimensionsAndCounts)
{
    Mesh m(4, 3);
    EXPECT_EQ(m.numNodes(), 12);
    // Horizontal: 3*3, vertical: 4*2.
    EXPECT_EQ(m.numLinks(), 17);
    EXPECT_TRUE(m.contains(Coord{3, 2}));
    EXPECT_FALSE(m.contains(Coord{4, 0}));
    EXPECT_FALSE(m.contains(Coord{0, -1}));
}

TEST(Mesh, RejectsDegenerate)
{
    EXPECT_THROW(Mesh(0, 3), qsurf::FatalError);
}

TEST(Mesh, ClaimMakesRouteBusy)
{
    Mesh m(5, 5);
    Path p = straightPath(2, 0, 4);
    EXPECT_TRUE(m.routeFree(p, 1));
    m.claim(p, 1);
    EXPECT_FALSE(m.routeFree(p, 2));
    EXPECT_TRUE(m.routeFree(p, 1)) << "owner may reuse its own route";
    EXPECT_EQ(m.nodeOwner(Coord{2, 2}), 1);
    EXPECT_EQ(m.linkOwner(Coord{0, 2}, Coord{1, 2}), 1);
}

TEST(Mesh, CrossingRoutesConflict)
{
    Mesh m(5, 5);
    m.claim(straightPath(2, 0, 4), 1);
    // A vertical path through (2,2) must be blocked.
    Path vertical;
    for (int y = 0; y <= 4; ++y)
        vertical.nodes.push_back(Coord{2, y});
    EXPECT_FALSE(m.routeFree(vertical, 2));
}

TEST(Mesh, DisjointRoutesCoexist)
{
    Mesh m(5, 5);
    m.claim(straightPath(0, 0, 4), 1);
    Path other = straightPath(3, 0, 4);
    EXPECT_TRUE(m.routeFree(other, 2));
    m.claim(other, 2);
    EXPECT_EQ(m.busyLinks(), 8);
}

TEST(Mesh, ReleaseFreesOnlyOwnedResources)
{
    Mesh m(5, 5);
    Path a = straightPath(0, 0, 2);
    Path b = straightPath(0, 2, 4); // shares node (2,0)
    m.claim(a, 1);
    EXPECT_FALSE(m.routeFree(b, 2));
    m.release(a, 1);
    EXPECT_TRUE(m.routeFree(b, 2));
    m.claim(b, 2);
    // Releasing A again (wrong owner for B's resources) is harmless.
    m.release(a, 1);
    EXPECT_EQ(m.nodeOwner(Coord{3, 0}), 2);
}

TEST(Mesh, DoubleClaimPanics)
{
    Mesh m(4, 4);
    Path p = straightPath(1, 0, 3);
    m.claim(p, 1);
    EXPECT_THROW(m.claim(p, 2), qsurf::PanicError);
}

TEST(Mesh, ClaimWithNoOwnerIdPanics)
{
    Mesh m(4, 4);
    EXPECT_THROW(m.claim(straightPath(0, 0, 1), Mesh::no_owner),
                 qsurf::PanicError);
}

TEST(Mesh, UtilizationAveragesBusyLinks)
{
    Mesh m(2, 2); // 4 links
    m.claim(straightPath(0, 0, 1), 1); // 1 link busy
    m.tick();
    m.tick();
    m.release(straightPath(0, 0, 1), 1);
    m.tick();
    m.tick();
    EXPECT_DOUBLE_EQ(m.utilization(), (0.25 + 0.25) / 4.0);
    EXPECT_EQ(m.cycles(), 4u);
}

TEST(Mesh, ResetClearsEverything)
{
    Mesh m(3, 3);
    m.claim(straightPath(0, 0, 2), 4);
    m.tick();
    m.reset();
    EXPECT_EQ(m.busyLinks(), 0);
    EXPECT_EQ(m.cycles(), 0u);
    EXPECT_TRUE(m.routeFree(straightPath(0, 0, 2), 9));
}

TEST(Mesh, EmptyPathIsAlwaysFree)
{
    Mesh m(3, 3);
    EXPECT_TRUE(m.routeFree(Path{}, 1));
}

TEST(Path, HopsAndEndpoints)
{
    Path p = straightPath(0, 0, 3);
    EXPECT_EQ(p.hops(), 3);
    EXPECT_EQ(p.source(), (Coord{0, 0}));
    EXPECT_EQ(p.dest(), (Coord{3, 0}));
}

TEST(Mesh, TryClaimSucceedsLikeClaim)
{
    Mesh m(5, 5);
    Path p = straightPath(2, 0, 4);
    EXPECT_TRUE(m.tryClaim(p, 1));
    EXPECT_EQ(m.nodeOwner(Coord{2, 2}), 1);
    EXPECT_EQ(m.linkOwner(Coord{0, 2}, Coord{1, 2}), 1);
    EXPECT_EQ(m.busyLinks(), 4);
}

TEST(Mesh, FailedTryClaimLeavesMeshUntouched)
{
    Mesh m(5, 5);
    m.claim(straightPath(2, 0, 4), 1);
    // A vertical route crossing (2,2) fails mid-walk; nothing it
    // validated before the conflict may stay claimed.
    Path vertical;
    for (int y = 0; y <= 4; ++y)
        vertical.nodes.push_back(Coord{2, y});
    EXPECT_FALSE(m.tryClaim(vertical, 2));
    EXPECT_EQ(m.nodeOwner(Coord{2, 0}), Mesh::no_owner);
    EXPECT_EQ(m.linkOwner(Coord{2, 0}, Coord{2, 1}), Mesh::no_owner);
    EXPECT_EQ(m.busyLinks(), 4);
}

TEST(Mesh, VerticalLinksOnOneWideMesh)
{
    Mesh m(1, 4);
    Path p;
    for (int y = 0; y < 4; ++y)
        p.nodes.push_back(Coord{0, y});
    EXPECT_TRUE(m.tryClaim(p, 3));
    EXPECT_EQ(m.linkOwner(Coord{0, 1}, Coord{0, 2}), 3);
    m.release(p, 3);
    EXPECT_EQ(m.busyLinks(), 0);
}

TEST(Mesh, DefectiveNodeIsNeverClaimable)
{
    Mesh m(5, 5);
    m.disableNode(Coord{2, 2});
    EXPECT_TRUE(m.nodeDefective(Coord{2, 2}));
    EXPECT_EQ(m.numDefectiveNodes(), 1);
    Path p = straightPath(2, 0, 4); // crosses (2,2)
    EXPECT_FALSE(m.routeFree(p, 1));
    EXPECT_FALSE(m.tryClaim(p, 1));
    // The failed walk must not leave partial claims behind.
    EXPECT_EQ(m.nodeOwner(Coord{0, 2}), Mesh::no_owner);
    EXPECT_EQ(m.busyLinks(), 0);
    // Routes that stay clear of the damage are unaffected.
    EXPECT_TRUE(m.tryClaim(straightPath(0, 0, 4), 1));
}

TEST(Mesh, DefectiveLinkBlocksOnlyThatSegment)
{
    Mesh m(5, 5);
    m.disableLink(Coord{1, 2}, Coord{2, 2});
    EXPECT_TRUE(m.linkDefective(Coord{1, 2}, Coord{2, 2}));
    EXPECT_TRUE(m.linkDefective(Coord{2, 2}, Coord{1, 2}))
        << "defect is direction-agnostic";
    EXPECT_EQ(m.numDefectiveLinks(), 1);
    EXPECT_FALSE(m.routeFree(straightPath(2, 0, 4), 1));
    // Both endpoint routers are still usable by other routes.
    Path vertical;
    for (int y = 0; y <= 4; ++y)
        vertical.nodes.push_back(Coord{2, y});
    EXPECT_TRUE(m.tryClaim(vertical, 1));
}

TEST(Mesh, ReleaseCannotFreeDefects)
{
    Mesh m(4, 4);
    m.disableNode(Coord{1, 1});
    Path p;
    p.nodes.push_back(Coord{0, 1});
    p.nodes.push_back(Coord{1, 1});
    // Release with any owner id must leave the defect in place.
    m.release(p, 7);
    EXPECT_TRUE(m.nodeDefective(Coord{1, 1}));
    EXPECT_FALSE(m.routeFree(p, 7));
}

TEST(Mesh, ResetReappliesDamage)
{
    Mesh m(4, 4);
    m.disableNode(Coord{1, 1});
    m.disableLink(Coord{2, 2}, Coord{3, 2});
    m.claim(straightPath(0, 0, 3), 1);
    m.tick();
    m.reset();
    EXPECT_EQ(m.busyLinks(), 0);
    EXPECT_TRUE(m.nodeDefective(Coord{1, 1}));
    EXPECT_TRUE(m.linkDefective(Coord{2, 2}, Coord{3, 2}));
    EXPECT_EQ(m.numDefectiveNodes(), 1);
    EXPECT_EQ(m.numDefectiveLinks(), 1);
}

TEST(Mesh, DisableIsIdempotent)
{
    Mesh m(3, 3);
    m.disableNode(Coord{0, 0});
    m.disableNode(Coord{0, 0});
    m.disableLink(Coord{1, 0}, Coord{1, 1});
    m.disableLink(Coord{1, 1}, Coord{1, 0});
    EXPECT_EQ(m.numDefectiveNodes(), 1);
    EXPECT_EQ(m.numDefectiveLinks(), 1);
}

TEST(Mesh, BulkTickMatchesRepeatedTicks)
{
    Mesh a(3, 3), b(3, 3);
    a.claim(straightPath(1, 0, 2), 1);
    b.claim(straightPath(1, 0, 2), 1);
    for (int i = 0; i < 7; ++i)
        a.tick();
    b.tick(7);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_DOUBLE_EQ(a.utilization(), b.utilization());
}

} // namespace
} // namespace qsurf::network
