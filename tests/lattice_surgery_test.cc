/**
 * @file
 * Lattice-surgery model tests (Section 8.2): the merge/split chain
 * must behave as the paper argues — slower than braids over
 * distance, unprefetchable unlike teleports, and therefore dominated
 * across the design space.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "estimate/lattice_surgery.h"

namespace qsurf::estimate {
namespace {

ResourceModel
modelFor(apps::AppKind app)
{
    qec::Technology tech;
    tech.p_physical = 1e-8;
    return ResourceModel(app, tech);
}

TEST(Surgery, EstimateIsWellFormed)
{
    ResourceModel m = modelFor(apps::AppKind::SQ);
    for (double kq : {1e3, 1e9, 1e15}) {
        ResourceEstimate e = estimateSurgery(m, kq);
        EXPECT_GT(e.physical_qubits, 0);
        EXPECT_GT(e.seconds, 0);
        EXPECT_GE(e.congestion_inflation, 1.0);
        EXPECT_EQ(e.code_distance,
                  qec::CodeModel::chooseDistance(1e-8, kq));
    }
}

TEST(Surgery, ChainCostGrowsWithMachineSize)
{
    ResourceModel m = modelFor(apps::AppKind::IsingFull);
    ResourceEstimate small = estimateSurgery(m, 1e4);
    ResourceEstimate large = estimateSurgery(m, 1e12);
    EXPECT_GT(large.step_cycles, small.step_cycles)
        << "merge/split chains lengthen with the mesh";
}

TEST(Surgery, SlowerThanBraidsAtDistance)
{
    ResourceModel m = modelFor(apps::AppKind::SQ);
    for (double kq : {1e8, 1e14, 1e20}) {
        ResourceEstimate s = estimateSurgery(m, kq);
        ResourceEstimate dd =
            m.estimate(qec::CodeKind::DoubleDefect, kq);
        EXPECT_GT(s.step_cycles, dd.step_cycles)
            << "at kq=" << kq
            << ": a chain of d-cycle merges cannot beat a 1-cycle "
               "braid";
    }
}

TEST(Surgery, SlowerThanPrefetchedTeleportsAtScale)
{
    ResourceModel m = modelFor(apps::AppKind::SQ);
    for (double kq : {1e10, 1e18}) {
        ResourceEstimate s = estimateSurgery(m, kq);
        ResourceEstimate pl = m.estimate(qec::CodeKind::Planar, kq);
        EXPECT_GT(s.seconds, pl.seconds)
            << "unprefetchable chains lose to JIT-hidden teleports";
    }
}

TEST(Surgery, SpaceStaysPlanarLike)
{
    ResourceModel m = modelFor(apps::AppKind::SQ);
    ResourceEstimate s = estimateSurgery(m, 1e10);
    ResourceEstimate pl = m.estimate(qec::CodeKind::Planar, 1e10);
    ResourceEstimate dd =
        m.estimate(qec::CodeKind::DoubleDefect, 1e10);
    EXPECT_LT(s.physical_qubits, dd.physical_qubits);
    EXPECT_GE(s.physical_qubits, pl.physical_qubits * 0.5);
}

TEST(Surgery, DominatedAcrossTheDesignSpace)
{
    // The Section 8.2 conclusion: surgery is never the best of the
    // three schemes over the swept design points.
    for (apps::AppKind app :
         {apps::AppKind::SQ, apps::AppKind::SHA1,
          apps::AppKind::IsingFull}) {
        ResourceModel m = modelFor(app);
        for (double kq = 1e3; kq <= 1e21; kq *= 1e3) {
            ThreeWay cmp = compareThreeWay(m, kq);
            EXPECT_NE(cmp.best(), 2)
                << apps::appSpec(app).name << " at kq=" << kq;
        }
    }
}

TEST(Surgery, BestIndexMatchesSpaceTime)
{
    ResourceModel m = modelFor(apps::AppKind::SQ);
    ThreeWay cmp = compareThreeWay(m, 1e6);
    double best = std::min({cmp.planar.spaceTime(),
                            cmp.double_defect.spaceTime(),
                            cmp.surgery.spaceTime()});
    double chosen = cmp.best() == 0 ? cmp.planar.spaceTime()
        : cmp.best() == 1          ? cmp.double_defect.spaceTime()
                                   : cmp.surgery.spaceTime();
    EXPECT_DOUBLE_EQ(chosen, best);
}

TEST(Surgery, RejectsBadSize)
{
    ResourceModel m = modelFor(apps::AppKind::SQ);
    EXPECT_THROW(estimateSurgery(m, 0.5), qsurf::FatalError);
}

} // namespace
} // namespace qsurf::estimate
