/**
 * @file
 * Peephole-optimizer tests: inverse-pair cancellation, rotation
 * merging, wire-adjacency safety, fixpoint behaviour, and the
 * semantic-preservation property that op parity on every wire is
 * maintained for non-cancelling circuits.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "circuit/peephole.h"
#include "common/logging.h"
#include "common/rng.h"

namespace qsurf::circuit {
namespace {

TEST(Peephole, CancelsAdjacentSelfInverse)
{
    Circuit c(1);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::H, 0);
    PeepholeStats stats;
    Circuit out = peephole(c, &stats);
    EXPECT_EQ(out.size(), 0);
    EXPECT_EQ(stats.cancelled_pairs, 1u);
}

TEST(Peephole, CancelsInversePairsBothOrders)
{
    for (auto [a, b] : std::vector<std::pair<GateKind, GateKind>>{
             {GateKind::S, GateKind::Sdag},
             {GateKind::Sdag, GateKind::S},
             {GateKind::T, GateKind::Tdag},
             {GateKind::Tdag, GateKind::T}}) {
        Circuit c(1);
        c.addGate(a, 0);
        c.addGate(b, 0);
        EXPECT_EQ(peephole(c).size(), 0)
            << gateName(a) << " then " << gateName(b);
    }
}

TEST(Peephole, CancelsAdjacentCnotPair)
{
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::CNOT, 0, 1);
    EXPECT_EQ(peephole(c).size(), 0);
}

TEST(Peephole, KeepsReversedCnotPair)
{
    // CNOT(0,1) then CNOT(1,0) is NOT identity.
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::CNOT, 1, 0);
    EXPECT_EQ(peephole(c).size(), 2);
}

TEST(Peephole, CzIsOperandSymmetric)
{
    Circuit c(2);
    c.addGate(GateKind::CZ, 0, 1);
    c.addGate(GateKind::CZ, 1, 0);
    EXPECT_EQ(peephole(c).size(), 0);
}

TEST(Peephole, InterveningGateBlocksCancellation)
{
    Circuit c(1);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::T, 0);
    c.addGate(GateKind::H, 0);
    EXPECT_EQ(peephole(c).size(), 3);
}

TEST(Peephole, InterveningGateOnEitherWireBlocksCnot)
{
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::X, 1); // touches the target wire
    c.addGate(GateKind::CNOT, 0, 1);
    EXPECT_EQ(peephole(c).size(), 3);
}

TEST(Peephole, SpectatorWireDoesNotBlock)
{
    Circuit c(3);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::X, 2); // unrelated wire
    c.addGate(GateKind::H, 0);
    Circuit out = peephole(c);
    EXPECT_EQ(out.size(), 1);
    EXPECT_EQ(out.gate(0).kind, GateKind::X);
}

TEST(Peephole, MergesRotations)
{
    Circuit c(1);
    c.addRz(0.25, 0);
    c.addRz(0.50, 0);
    PeepholeStats stats;
    Circuit out = peephole(c, &stats);
    ASSERT_EQ(out.size(), 1);
    EXPECT_DOUBLE_EQ(out.gate(0).angle, 0.75);
    EXPECT_EQ(stats.merged_rotations, 1u);
}

TEST(Peephole, OppositeRotationsVanish)
{
    Circuit c(1);
    c.addRz(0.3, 0);
    c.addRz(-0.3, 0);
    EXPECT_EQ(peephole(c).size(), 0);
}

TEST(Peephole, CascadesToFixpoint)
{
    // T Tdag exposes the H pair around them.
    Circuit c(1);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::T, 0);
    c.addGate(GateKind::Tdag, 0);
    c.addGate(GateKind::H, 0);
    PeepholeStats stats;
    Circuit out = peephole(c, &stats);
    EXPECT_EQ(out.size(), 0);
    EXPECT_EQ(stats.cancelled_pairs, 2u);
    EXPECT_GE(stats.passes, 2);
}

TEST(Peephole, ChainOfPairsFullyCancels)
{
    Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.addGate(GateKind::X, 0);
    EXPECT_EQ(peephole(c).size(), 0);
}

TEST(Peephole, MeasurementsAndPrepsSurvive)
{
    Circuit c(1);
    c.addGate(GateKind::PrepZ, 0);
    c.addGate(GateKind::PrepZ, 0);
    c.addGate(GateKind::MeasZ, 0);
    c.addGate(GateKind::MeasZ, 0);
    EXPECT_EQ(peephole(c).size(), 4);
}

TEST(Peephole, IdempotentOnOptimizedOutput)
{
    apps::GenOptions opts;
    opts.problem_size = 10;
    opts.max_iterations = 2;
    Circuit c = apps::generate(apps::AppKind::SQ, opts);
    Circuit once = peephole(c);
    PeepholeStats again;
    Circuit twice = peephole(once, &again);
    EXPECT_EQ(once.size(), twice.size());
    EXPECT_EQ(again.cancelled_pairs + again.merged_rotations, 0u);
}

/** Property: on random Clifford circuits, gate-count parity per wire
 *  changes only in units of whole cancelled pairs. */
class PeepholeProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PeepholeProperty, NeverGrowsAndStaysValid)
{
    qsurf::Rng rng(GetParam());
    Circuit c(4);
    for (int i = 0; i < 300; ++i) {
        switch (rng.below(4)) {
          case 0:
            c.addGate(GateKind::H,
                      static_cast<int32_t>(rng.below(4)));
            break;
          case 1:
            c.addGate(GateKind::X,
                      static_cast<int32_t>(rng.below(4)));
            break;
          case 2:
            c.addRz(rng.uniform() - 0.5,
                    static_cast<int32_t>(rng.below(4)));
            break;
          default: {
            auto a = static_cast<int32_t>(rng.below(4));
            auto b = static_cast<int32_t>((a + 1 + rng.below(3)) % 4);
            c.addGate(GateKind::CNOT, a, b);
            break;
          }
        }
    }
    PeepholeStats stats;
    Circuit out = peephole(c, &stats);
    EXPECT_LE(out.size(), c.size());
    // Removed = 2 per cancelled pair + 1 per plain merge + 2 per
    // merge whose angle vanished; bound both sides.
    auto removed =
        static_cast<uint64_t>(c.size()) - out.size();
    EXPECT_GE(removed, stats.cancelled_pairs * 2
                  + stats.merged_rotations);
    EXPECT_LE(removed, stats.cancelled_pairs * 2
                  + stats.merged_rotations * 2);
    // Output must still validate (operands in range etc.).
    Circuit copy(out.name(), out.numQubits());
    for (const Gate &g : out)
        copy.addGate(g);
}

INSTANTIATE_TEST_SUITE_P(Random, PeepholeProperty,
                         ::testing::Range<uint64_t>(1, 13));

} // namespace
} // namespace qsurf::circuit
