/**
 * @file
 * Grid-layout tests: placement validity (a permutation into cells),
 * the interaction-aware layout beating the naive one on clustered
 * graphs (the Section 6.2 claim), and grid shape selection.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "partition/layout.h"

namespace qsurf::partition {
namespace {

/** Clusters of tightly linked vertices, lightly linked together. */
Graph
clusteredGraph(int clusters, int per_cluster)
{
    Graph g(clusters * per_cluster);
    for (int c = 0; c < clusters; ++c) {
        int base = c * per_cluster;
        for (int i = 0; i < per_cluster; ++i)
            for (int j = i + 1; j < per_cluster; ++j)
                g.addEdge(base + i, base + j, 20);
        if (c > 0)
            g.addEdge(base, base - per_cluster, 1);
    }
    return g;
}

void
expectValidPlacement(const GridLayout &layout, int n)
{
    ASSERT_EQ(static_cast<int>(layout.position.size()), n);
    std::set<std::pair<int, int>> used;
    for (int v = 0; v < n; ++v) {
        const Coord &c = layout.position[static_cast<size_t>(v)];
        EXPECT_GE(c.x, 0);
        EXPECT_LT(c.x, layout.width);
        EXPECT_GE(c.y, 0);
        EXPECT_LT(c.y, layout.height);
        EXPECT_TRUE(used.insert({c.x, c.y}).second)
            << "cell reused by vertex " << v;
        EXPECT_EQ(layout.at(c), v);
    }
}

TEST(NaiveLayout, RowMajorPlacement)
{
    GridLayout l = naiveLayout(6, 3, 2);
    expectValidPlacement(l, 6);
    EXPECT_EQ(l.position[0], (Coord{0, 0}));
    EXPECT_EQ(l.position[4], (Coord{1, 1}));
}

TEST(OptimizedLayout, IsValidPermutation)
{
    Graph g = clusteredGraph(4, 4);
    GridLayout l = layoutOnGrid(g, 4, 4, 7);
    expectValidPlacement(l, 16);
}

TEST(OptimizedLayout, BeatsNaiveOnClusteredGraph)
{
    Graph g = clusteredGraph(4, 9);
    GridLayout naive = naiveLayout(g.size(), 6, 6);
    GridLayout opt = layoutOnGrid(g, 6, 6, 11);
    EXPECT_LT(weightedManhattan(g, opt),
              weightedManhattan(g, naive))
        << "interaction-aware layout should shorten braid routes";
}

TEST(OptimizedLayout, DeterministicPerSeed)
{
    Graph g = clusteredGraph(3, 5);
    GridLayout a = layoutOnGrid(g, 4, 4, 5);
    GridLayout b = layoutOnGrid(g, 4, 4, 5);
    EXPECT_EQ(a.position, b.position);
}

TEST(OptimizedLayout, HandlesNonSquareAndSparseGrids)
{
    Graph g = clusteredGraph(2, 3);
    GridLayout l = layoutOnGrid(g, 7, 1, 3);
    expectValidPlacement(l, 6);
    GridLayout l2 = layoutOnGrid(g, 4, 4, 3); // 6 vertices, 16 cells
    expectValidPlacement(l2, 6);
}

TEST(OptimizedLayout, SingleVertex)
{
    Graph g(1);
    GridLayout l = layoutOnGrid(g, 1, 1, 1);
    expectValidPlacement(l, 1);
}

TEST(Layout, OverflowIsFatal)
{
    Graph g(5);
    EXPECT_THROW(layoutOnGrid(g, 2, 2, 1), qsurf::FatalError);
    EXPECT_THROW(naiveLayout(5, 2, 2), qsurf::FatalError);
}

TEST(Layout, WeightedManhattanOfKnownPlacement)
{
    Graph g(2);
    g.addEdge(0, 1, 3);
    GridLayout l = naiveLayout(2, 2, 1); // cells (0,0) and (1,0)
    EXPECT_DOUBLE_EQ(weightedManhattan(g, l), 3.0);
}

/** @return a mask over w x h with the given cells dead. */
CellMask
maskOf(int w, int h, std::initializer_list<Coord> dead)
{
    CellMask m(static_cast<size_t>(w * h), 0);
    for (const Coord &c : dead)
        m[static_cast<size_t>(c.y * w + c.x)] = 1;
    return m;
}

void
expectNoDeadPlacement(const GridLayout &layout, const CellMask &dead)
{
    for (const Coord &c : layout.position)
        EXPECT_FALSE(dead[static_cast<size_t>(
            c.y * layout.width + c.x)])
            << "vertex placed on dead cell " << c;
}

TEST(NaiveLayout, SkipsDeadCells)
{
    CellMask dead = maskOf(3, 2, {{1, 0}});
    GridLayout l = naiveLayout(5, 3, 2, dead);
    expectValidPlacement(l, 5);
    expectNoDeadPlacement(l, dead);
    // Row-major fill skips the hole: (0,0), (2,0), (0,1), ...
    EXPECT_EQ(l.position[0], (Coord{0, 0}));
    EXPECT_EQ(l.position[1], (Coord{2, 0}));
    EXPECT_EQ(l.position[2], (Coord{0, 1}));
    // 5 vertices into 5 live cells fits exactly; a 6th cannot.
    EXPECT_THROW(naiveLayout(6, 3, 2, dead), qsurf::FatalError);
}

TEST(OptimizedLayout, RelocatesOffDeadCells)
{
    Graph g = clusteredGraph(3, 4);
    CellMask dead = maskOf(4, 4, {{0, 0}, {2, 1}, {3, 3}});
    GridLayout l = layoutOnGrid(g, 4, 4, 7, dead);
    expectValidPlacement(l, 12);
    expectNoDeadPlacement(l, dead);
    // An empty mask is the exact unmasked layout.
    GridLayout unmasked = layoutOnGrid(g, 4, 4, 7);
    GridLayout empty_mask = layoutOnGrid(g, 4, 4, 7, CellMask{});
    EXPECT_EQ(unmasked.position, empty_mask.position);
}

TEST(EvictDeadCells, MovesToNearestLiveCell)
{
    GridLayout l = naiveLayout(2, 3, 2); // (0,0) and (1,0)
    CellMask dead = maskOf(3, 2, {{1, 0}});
    evictDeadCells(l, dead);
    EXPECT_EQ(l.position[0], (Coord{0, 0})) << "live cell untouched";
    EXPECT_EQ(l.position[1], (Coord{2, 0}))
        << "evicted vertex takes the nearest empty live cell";
    EXPECT_EQ(l.at(Coord{2, 0}), 1);
    // Nowhere to go: every cell dead or occupied.
    GridLayout full = naiveLayout(6, 3, 2);
    EXPECT_THROW(evictDeadCells(full, dead), qsurf::FatalError);
}

TEST(CorridorObjective, MaskedRefinementAvoidsDeadCells)
{
    Graph g = clusteredGraph(3, 4);
    CellMask dead = maskOf(4, 4, {{1, 1}, {3, 0}});
    GridLayout l = layoutOnGrid(g, 4, 4, 11, dead);
    double before = weightedCorridorLength(g, l);
    double after = refineForCorridors(g, l, 0, 8, dead);
    EXPECT_LE(after, before);
    expectValidPlacement(l, 12);
    expectNoDeadPlacement(l, dead);
    // The masked path with an empty mask is the unmasked path.
    GridLayout a = layoutOnGrid(g, 4, 4, 11);
    GridLayout b = layoutOnGrid(g, 4, 4, 11);
    refineForCorridors(g, a);
    refineForCorridors(g, b, 0, 8, CellMask{});
    EXPECT_EQ(a.position, b.position);
}

TEST(CorridorTiles, MatchesRoutingGeometry)
{
    // Adjacent patches merge through the shared boundary: one tile.
    EXPECT_EQ(corridorTiles(Coord{0, 0}, Coord{1, 0}), 1);
    EXPECT_EQ(corridorTiles(Coord{2, 3}, Coord{2, 4}), 1);
    // Diagonal pairs route at Manhattan length.
    EXPECT_EQ(corridorTiles(Coord{0, 0}, Coord{2, 3}), 5);
    EXPECT_EQ(corridorTiles(Coord{1, 1}, Coord{0, 3}), 3);
    // Collinear non-adjacent pairs detour around the patches between
    // them: one extra tile.
    EXPECT_EQ(corridorTiles(Coord{0, 0}, Coord{3, 0}), 4);
    EXPECT_EQ(corridorTiles(Coord{2, 1}, Coord{2, 4}), 4);
    EXPECT_EQ(corridorTiles(Coord{1, 1}, Coord{1, 1}), 0);
}

TEST(CorridorObjective, WeightedLengthOfKnownPlacement)
{
    Graph g(3);
    g.addEdge(0, 1, 2); // adjacent: 1 tile
    g.addEdge(0, 2, 5); // collinear non-adjacent: 2 + 1 tiles
    GridLayout l = naiveLayout(3, 3, 1);
    EXPECT_DOUBLE_EQ(weightedManhattan(g, l), 2.0 + 10.0);
    EXPECT_DOUBLE_EQ(weightedCorridorLength(g, l), 2.0 + 15.0);
}

TEST(CorridorObjective, RefinementImprovesAndStaysValid)
{
    Graph g = clusteredGraph(4, 9);
    GridLayout seed = layoutOnGrid(g, 6, 6, 11);
    double before = weightedCorridorLength(g, seed);

    GridLayout refined = seed;
    double after = refineForCorridors(g, refined);
    EXPECT_LE(after, before)
        << "greedy swaps must never worsen the corridor objective";
    EXPECT_DOUBLE_EQ(after, weightedCorridorLength(g, refined));
    expectValidPlacement(refined, g.size());

    // Deterministic: same seed layout refines to the same placement.
    GridLayout again = seed;
    refineForCorridors(g, again);
    EXPECT_EQ(refined.position, again.position);
}

TEST(CorridorObjective, RefinementUsesEmptyCells)
{
    // Two vertices stuck at opposite ends of a sparse row: moving one
    // into an empty middle cell is the only improving transformation.
    Graph g(2);
    g.addEdge(0, 1, 1);
    GridLayout l;
    l.width = 5;
    l.height = 1;
    l.position = {Coord{0, 0}, Coord{4, 0}};
    l.vertex_at = {0, -1, -1, -1, 1};
    double after = refineForCorridors(g, l);
    EXPECT_DOUBLE_EQ(after, 1.0);
    expectValidPlacement(l, 2);
}

TEST(CorridorObjective, NamesAndCheckedCast)
{
    EXPECT_STREQ(layoutObjectiveName(LayoutObjective::BraidManhattan),
                 "braid-manhattan");
    EXPECT_STREQ(layoutObjectiveName(LayoutObjective::Corridor),
                 "corridor");
    EXPECT_STREQ(layoutObjectiveName(LayoutObjective::CorridorLanes),
                 "corridor+lanes");
    EXPECT_EQ(layoutObjective(1), LayoutObjective::Corridor);
    EXPECT_THROW(layoutObjective(-1), qsurf::FatalError);
    EXPECT_THROW(layoutObjective(3), qsurf::FatalError);
}

TEST(GridShape, CoversRequestedCells)
{
    for (int n : {1, 2, 3, 4, 5, 10, 17, 100, 101}) {
        auto [w, h] = gridShape(n);
        EXPECT_GE(w * h, n) << n;
        EXPECT_LE(w * h, n + w) << "not wastefully large for " << n;
        EXPECT_LE(std::abs(w - h), 1) << "near-square for " << n;
    }
}

TEST(GridShape, RejectsZero)
{
    EXPECT_THROW(gridShape(0), qsurf::FatalError);
}

} // namespace
} // namespace qsurf::partition
