/**
 * @file
 * Parser tests: declarations, modules, gate statements, measurement
 * arrows and the diagnostic contract for malformed programs.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "qasm/parser.h"

namespace qsurf::qasm {
namespace {

TEST(Parser, RegistersAndBody)
{
    Program p = parse("qbit q[4]; cbit c[2]; H q[0]; CNOT q[0], q[1];");
    ASSERT_EQ(p.registers.size(), 2u);
    EXPECT_EQ(p.registers[0].name, "q");
    EXPECT_EQ(p.registers[0].size, 4);
    EXPECT_FALSE(p.registers[0].classical);
    EXPECT_TRUE(p.registers[1].classical);
    EXPECT_EQ(p.totalQubits(), 4);
    ASSERT_EQ(p.body.size(), 2u);
    EXPECT_EQ(p.body[1].name, "CNOT");
    ASSERT_EQ(p.body[1].operands.size(), 2u);
    EXPECT_EQ(p.body[1].operands[1].name, "q");
    EXPECT_EQ(p.body[1].operands[1].index, 1);
}

TEST(Parser, RzAngleParameter)
{
    Program p = parse("qbit q[1]; Rz(0.785) q[0];");
    ASSERT_EQ(p.body.size(), 1u);
    ASSERT_TRUE(p.body[0].angle.has_value());
    EXPECT_DOUBLE_EQ(*p.body[0].angle, 0.785);
}

TEST(Parser, NegativeAngle)
{
    Program p = parse("qbit q[1]; Rz(-1.5) q[0];");
    EXPECT_DOUBLE_EQ(*p.body[0].angle, -1.5);
}

TEST(Parser, MeasurementArrow)
{
    Program p = parse("qbit q[1]; cbit c[1]; MeasZ q[0] -> c[0];");
    ASSERT_TRUE(p.body[0].result.has_value());
    EXPECT_EQ(p.body[0].result->name, "c");
    EXPECT_EQ(p.body[0].result->index, 0);
}

TEST(Parser, ModuleDefinition)
{
    Program p = parse(
        "module bell(a, b) { H a; CNOT a, b; }\n"
        "qbit q[2]; bell q[0], q[1];");
    ASSERT_EQ(p.modules.size(), 1u);
    const Module &m = p.modules.at("bell");
    EXPECT_EQ(m.params, (std::vector<std::string>{"a", "b"}));
    ASSERT_EQ(m.body.size(), 2u);
    EXPECT_TRUE(m.body[0].operands[0].isParam());
}

TEST(Parser, EmptyParameterList)
{
    Program p = parse("qbit q[1]; module nop() { H q[0]; } nop;");
    EXPECT_TRUE(p.modules.at("nop").params.empty());
}

TEST(Parser, DuplicateRegisterIsFatal)
{
    EXPECT_THROW(parse("qbit q[1]; qbit q[2];"), qsurf::FatalError);
}

TEST(Parser, DuplicateModuleIsFatal)
{
    EXPECT_THROW(parse("module m(a) { H a; } module m(b) { X b; }"),
                 qsurf::FatalError);
}

TEST(Parser, ZeroSizeRegisterIsFatal)
{
    EXPECT_THROW(parse("qbit q[0];"), qsurf::FatalError);
}

TEST(Parser, MissingSemicolonIsFatal)
{
    EXPECT_THROW(parse("qbit q[1]; H q[0]"), qsurf::FatalError);
}

TEST(Parser, UnterminatedModuleIsFatal)
{
    EXPECT_THROW(parse("module m(a) { H a;"), qsurf::FatalError);
}

TEST(Parser, NegativeIndexIsFatal)
{
    EXPECT_THROW(parse("qbit q[2]; H q[-1];"), qsurf::FatalError);
}

TEST(Parser, MissingFileIsFatal)
{
    EXPECT_THROW(parseFile("/nonexistent/path.qasm"),
                 qsurf::FatalError);
}

TEST(Parser, ErrorMentionsLineNumber)
{
    try {
        parse("qbit q[1];\nH q[0]\nX q[0];");
        FAIL() << "expected parse error";
    } catch (const qsurf::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace qsurf::qasm
