/**
 * @file
 * Prepare-cache and compile-service tests: single-flight and LRU
 * semantics of PrepareCache, artifact-key separation across seeds /
 * objectives / distances, and the load-bearing guarantee of the
 * whole subsystem — cached and uncached paths are bit-identical, at
 * any thread count, on every simulated backend.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/apps.h"
#include "circuit/decompose.h"
#include "common/logging.h"
#include "engine/sweep.h"
#include "service/artifact.h"
#include "service/cache.h"
#include "service/service.h"
#include "service/shard.h"
#include "toolflow/toolflow.h"

namespace qsurf {
namespace {

using service::CacheStats;
using service::PrepareCache;

/** Full equality of two uniform metric records. */
bool
sameMetrics(const engine::Metrics &a, const engine::Metrics &b)
{
    if (a.backend != b.backend
        || a.code_distance != b.code_distance
        || a.schedule_cycles != b.schedule_cycles
        || a.critical_path_cycles != b.critical_path_cycles
        || a.physical_qubits != b.physical_qubits
        || a.seconds != b.seconds
        || a.extras.size() != b.extras.size())
        return false;
    for (const auto &[name, v] : a.extras)
        if (v != b.extra(name))
            return false;
    return true;
}

PrepareCache::Value
intValue(int v)
{
    return std::static_pointer_cast<const void>(
        std::make_shared<const int>(v));
}

TEST(PrepareCache, HitMissContainsAndStats)
{
    PrepareCache cache;
    EXPECT_FALSE(cache.contains("k"));
    int builds = 0;
    auto build = [&] {
        ++builds;
        return intValue(7);
    };
    PrepareCache::Value first = cache.getOrBuild("k", build);
    PrepareCache::Value again = cache.getOrBuild("k", build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), again.get());
    EXPECT_EQ(*std::static_pointer_cast<const int>(first), 7);
    EXPECT_TRUE(cache.contains("k"));

    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_DOUBLE_EQ(s.hitRatio(), 0.5);
}

TEST(PrepareCache, SingleFlightBuildsOnce)
{
    PrepareCache::Options opts;
    opts.shards = 1;
    PrepareCache cache(opts);
    std::atomic<int> builds{0};
    auto build = [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        builds.fetch_add(1);
        return intValue(42);
    };
    constexpr int callers = 8;
    std::vector<std::thread> pool;
    std::vector<PrepareCache::Value> values(callers);
    for (int t = 0; t < callers; ++t)
        pool.emplace_back([&, t] {
            values[static_cast<size_t>(t)] =
                cache.getOrBuild("shared", build);
        });
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(builds.load(), 1);
    for (const PrepareCache::Value &v : values)
        EXPECT_EQ(v.get(), values[0].get());
    CacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, static_cast<uint64_t>(callers - 1));
}

TEST(PrepareCache, LruEvictsLeastRecentlyUsed)
{
    PrepareCache::Options opts;
    opts.capacity = 2;
    opts.shards = 1; // One global LRU order, pinned by this test.
    PrepareCache cache(opts);
    cache.getOrBuild("a", [&] { return intValue(1); });
    cache.getOrBuild("b", [&] { return intValue(2); });
    // Touch "a" so "b" is the least recently used...
    cache.getOrBuild("a", [&] { return intValue(1); });
    // ...and a third insert evicts it.
    cache.getOrBuild("c", [&] { return intValue(3); });

    EXPECT_TRUE(cache.contains("a"));
    EXPECT_FALSE(cache.contains("b"));
    EXPECT_TRUE(cache.contains("c"));
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
}

TEST(PrepareCache, BuilderExceptionPropagatesAndEntryRetries)
{
    PrepareCache cache;
    int attempts = 0;
    auto failing = [&]() -> PrepareCache::Value {
        ++attempts;
        throw std::runtime_error("builder failed");
    };
    EXPECT_THROW(cache.getOrBuild("k", failing),
                 std::runtime_error);
    EXPECT_FALSE(cache.contains("k"));
    // The failed entry is gone; a later call retries the build.
    PrepareCache::Value v =
        cache.getOrBuild("k", [&] { return intValue(5); });
    EXPECT_EQ(*std::static_pointer_cast<const int>(v), 5);
    EXPECT_EQ(attempts, 1);
}

TEST(PrepareCache, ClearDropsReadyEntriesAndKeepsCounters)
{
    PrepareCache cache;
    cache.getOrBuild("k", [&] { return intValue(1); });
    cache.clear();
    EXPECT_FALSE(cache.contains("k"));
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    int builds = 0;
    cache.getOrBuild("k", [&] {
        ++builds;
        return intValue(1);
    });
    EXPECT_EQ(builds, 1);
}

/** A small decomposed circuit plus a baseline WorkItem. */
struct ItemFixture
{
    circuit::Circuit circ;
    engine::WorkItem item;

    ItemFixture()
        : circ(circuit::decompose(
              apps::generate(apps::AppKind::SQ, {8, 1})))
    {
        item.circuit = &circ;
        item.config.code_distance = 5;
        item.config.seed = 9;
    }
};

TEST(ArtifactKeys, SeparateSeedObjectiveAndDistance)
{
    ItemFixture fx;
    const engine::Backend &surgery =
        engine::Registry::global().get(
            engine::backends::surgery_sim);

    std::string base = surgery.artifactKey(fx.item);
    ASSERT_FALSE(base.empty());

    engine::WorkItem other = fx.item;
    other.config.seed = 10;
    EXPECT_NE(surgery.artifactKey(other), base);

    other = fx.item;
    other.config.layout_objective = 2;
    EXPECT_NE(surgery.artifactKey(other), base);

    other = fx.item;
    other.config.code_distance = 7;
    EXPECT_NE(surgery.artifactKey(other), base);

    other = fx.item;
    other.config.lane_spacing = 2;
    EXPECT_NE(surgery.artifactKey(other), base);

    // Policies 2+ share the optimized layout; 0/1 the naive one.
    other = fx.item;
    other.config.policy = 2;
    EXPECT_EQ(surgery.artifactKey(other), base);
    other.config.policy = 0;
    EXPECT_NE(surgery.artifactKey(other), base);
}

TEST(ArtifactKeys, SurgeryAndHybridShareOnePatchMachine)
{
    ItemFixture fx;
    engine::Registry &registry = engine::Registry::global();
    const engine::Backend &surgery =
        registry.get(engine::backends::surgery_sim);
    const engine::Backend &hybrid =
        registry.get(engine::backends::hybrid_mixed);
    const engine::Backend &braid =
        registry.get(engine::backends::double_defect);

    // Shared on purpose: the two simulators build identical patch
    // machines, so one cached artifact serves both.
    EXPECT_EQ(surgery.artifactKey(fx.item),
              hybrid.artifactKey(fx.item));
    // The tiled double-defect machine is a different artifact.
    EXPECT_NE(braid.artifactKey(fx.item),
              surgery.artifactKey(fx.item));

    // And the shared artifact really is accepted by both.
    PrepareCache cache;
    auto artifact = service::fetchArtifact(cache, surgery, fx.item);
    ASSERT_NE(artifact, nullptr);
    engine::Metrics direct = hybrid.run(fx.item);
    engine::Metrics shared = hybrid.run(fx.item, artifact.get());
    EXPECT_TRUE(sameMetrics(direct, shared));
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ArtifactKeys, PlanarKeyIgnoresSeedButNotDistance)
{
    ItemFixture fx;
    const engine::Backend &planar =
        engine::Registry::global().get(engine::backends::planar);
    std::string base = planar.artifactKey(fx.item);
    ASSERT_FALSE(base.empty());

    engine::WorkItem other = fx.item;
    other.config.seed = 10;
    EXPECT_EQ(planar.artifactKey(other), base);
    other = fx.item;
    other.config.code_distance = 7;
    EXPECT_NE(planar.artifactKey(other), base);
}

TEST(ArtifactKeys, ModelBackendsAreNotCacheable)
{
    ItemFixture fx;
    fx.item.config.kq = 1e6;
    PrepareCache cache;
    const engine::Backend &model = engine::Registry::global().get(
        engine::backends::surgery_model);
    EXPECT_TRUE(model.artifactKey(fx.item).empty());
    EXPECT_EQ(service::fetchArtifact(cache, model, fx.item),
              nullptr);
    EXPECT_EQ(cache.stats().misses, 0u);
}

/** The small simulated-backend grid the identity tests sweep. */
engine::SweepGrid
identityGrid()
{
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""}};
    grid.backends = {engine::backends::double_defect,
                     engine::backends::planar,
                     engine::backends::surgery_sim,
                     engine::backends::hybrid_mixed};
    grid.layout_objectives = {0, 2};
    grid.distances = {3, 5};
    grid.base.seed = 77;
    return grid;
}

TEST(SweepCache, CachedMatchesUncachedAtEveryThreadCount)
{
    engine::SweepGrid grid = identityGrid();

    engine::SweepOptions opts;
    opts.use_cache = false;
    opts.num_threads = 1;
    auto uncached = engine::SweepDriver().run(grid, opts);

    for (int threads : {1, 2, 8}) {
        PrepareCache cache;
        engine::SweepOptions cached_opts;
        cached_opts.use_cache = true;
        cached_opts.cache = &cache;
        cached_opts.num_threads = threads;
        auto cached = engine::SweepDriver().run(grid, cached_opts);
        ASSERT_EQ(cached.size(), uncached.size());
        for (size_t i = 0; i < cached.size(); ++i)
            EXPECT_TRUE(sameMetrics(uncached[i].metrics,
                                    cached[i].metrics))
                << "point " << i << " at " << threads
                << " threads";
        EXPECT_GT(cache.stats().misses, 0u);
    }
}

TEST(SweepCache, WarmRepeatIsBitIdenticalAndHits)
{
    engine::SweepGrid grid = identityGrid();
    PrepareCache cache;
    engine::SweepOptions opts;
    opts.cache = &cache;
    opts.num_threads = 2;

    auto cold = engine::SweepDriver().run(grid, opts);
    uint64_t cold_misses = cache.stats().misses;
    auto warm = engine::SweepDriver().run(grid, opts);

    ASSERT_EQ(cold.size(), warm.size());
    for (size_t i = 0; i < cold.size(); ++i)
        EXPECT_TRUE(
            sameMetrics(cold[i].metrics, warm[i].metrics));
    // The warm pass built nothing new.
    EXPECT_EQ(cache.stats().misses, cold_misses);
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(SweepCache, CallerCircuitAppPointMatchesGeneratedApp)
{
    engine::SweepGrid generated;
    generated.apps = {{apps::AppKind::SQ, {8, 2}, ""}};
    generated.backends = {engine::backends::surgery_sim};
    generated.distances = {5};

    engine::SweepGrid caller = generated;
    caller.apps = {engine::AppPoint(
        std::make_shared<const circuit::Circuit>(
            apps::generate(apps::AppKind::SQ, {8, 2})))};

    engine::SweepOptions opts;
    auto from_app = engine::SweepDriver().run(generated, opts);
    auto from_circ = engine::SweepDriver().run(caller, opts);
    ASSERT_EQ(from_app.size(), from_circ.size());
    for (size_t i = 0; i < from_app.size(); ++i)
        EXPECT_TRUE(sameMetrics(from_app[i].metrics,
                                from_circ[i].metrics));
}

TEST(CompileService, MatchesDirectBackendRun)
{
    service::PrepareCache cache;
    service::CompileService::Options opts;
    opts.num_threads = 2;
    opts.cache = &cache;
    service::CompileService svc(opts);

    service::CompileRequest req;
    req.app = apps::AppKind::SQ;
    req.gen = {8, 2};
    req.backend = engine::backends::surgery_sim;
    req.config.code_distance = 5;
    req.config.seed = 3;

    service::CompileResponse cold = svc.compile(req);
    ASSERT_TRUE(cold.ok()) << cold.error;
    service::CompileResponse warm = svc.compile(req);
    ASSERT_TRUE(warm.ok()) << warm.error;

    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, {8, 2}));
    engine::WorkItem item;
    item.app = req.app;
    item.app_name = apps::appSpec(req.app).name;
    item.circuit = &circ;
    item.config = req.config;
    engine::Metrics direct =
        engine::Registry::global()
            .get(engine::backends::surgery_sim)
            .run(item);

    EXPECT_TRUE(sameMetrics(direct, cold.metrics));
    EXPECT_TRUE(sameMetrics(direct, warm.metrics));
    EXPECT_GT(svc.stats().cache.hits, 0u);
}

TEST(CompileService, ServesModelBackendsFromTheCachedProgram)
{
    service::PrepareCache cache;
    service::CompileService::Options opts;
    opts.num_threads = 1;
    opts.cache = &cache;
    service::CompileService svc(opts);

    service::CompileRequest req;
    req.app = apps::AppKind::SHA1;
    req.gen = {8, 1};
    req.backend = engine::backends::surgery_model;
    service::CompileResponse r = svc.compile(req);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.metrics.schedule_cycles, 0u);
}

TEST(CompileService, BatchesQueuedDuplicates)
{
    service::PrepareCache cache;
    service::CompileService::Options opts;
    opts.num_threads = 1; // One worker => duplicates stay queued.
    opts.cache = &cache;
    service::CompileService svc(opts);

    // Occupy the worker with a slow request, then queue duplicates
    // behind it; they are served as one batch.
    service::CompileRequest slow;
    slow.app = apps::AppKind::IsingSemi;
    slow.gen = {16, 4};
    slow.backend = engine::backends::surgery_sim;
    slow.config.code_distance = 3;
    auto blocker = svc.submit(slow);

    service::CompileRequest dup;
    dup.app = apps::AppKind::SQ;
    dup.gen = {8, 1};
    dup.backend = engine::backends::surgery_sim;
    dup.config.code_distance = 3;
    std::vector<std::future<service::CompileResponse>> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(svc.submit(dup));

    ASSERT_TRUE(blocker.get().ok());
    std::vector<service::CompileResponse> responses;
    for (auto &f : futures)
        responses.push_back(f.get());
    for (const service::CompileResponse &r : responses) {
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_TRUE(
            sameMetrics(r.metrics, responses[0].metrics));
        EXPECT_GE(r.batch_size, 1u);
    }
    service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.requests, 4u);
    EXPECT_LE(stats.batches, 4u);
}

TEST(CompileService, ReportsErrorsPerRequestAndStaysUp)
{
    service::PrepareCache cache;
    service::CompileService::Options opts;
    opts.num_threads = 1;
    opts.cache = &cache;
    service::CompileService svc(opts);

    service::CompileRequest bad;
    bad.backend = "no-such-backend";
    service::CompileResponse r = svc.compile(bad);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("no-such-backend"), std::string::npos);

    service::CompileRequest good;
    good.app = apps::AppKind::SQ;
    good.gen = {8, 1};
    good.config.code_distance = 3;
    EXPECT_TRUE(svc.compile(good).ok());
}

TEST(Toolflow, CachedRunMatchesUncached)
{
    circuit::Circuit logical =
        apps::generate(apps::AppKind::GSE, {8, 2});
    toolflow::Config cached_cfg;
    cached_cfg.use_cache = true;
    toolflow::Config uncached_cfg;
    uncached_cfg.use_cache = false;

    toolflow::Report uncached = toolflow::run(logical, uncached_cfg);
    toolflow::Report first = toolflow::run(logical, cached_cfg);
    toolflow::Report warm = toolflow::run(logical, cached_cfg);

    for (const toolflow::Report *r : {&first, &warm}) {
        EXPECT_EQ(r->counts.total, uncached.counts.total);
        EXPECT_EQ(r->code_distance, uncached.code_distance);
        ASSERT_EQ(r->backend_metrics.size(),
                  uncached.backend_metrics.size());
        for (size_t i = 0; i < r->backend_metrics.size(); ++i)
            EXPECT_TRUE(sameMetrics(r->backend_metrics[i],
                                    uncached.backend_metrics[i]));
    }
}

TEST(Toolflow, CachedQasmMatchesUncached)
{
    std::string source = apps::sampleHierarchicalQasm();
    toolflow::Config cached_cfg;
    toolflow::Config uncached_cfg;
    uncached_cfg.use_cache = false;

    toolflow::Report uncached =
        toolflow::runQasm(source, uncached_cfg);
    toolflow::Report cold = toolflow::runQasm(source, cached_cfg);
    toolflow::Report warm = toolflow::runQasm(source, cached_cfg);

    for (const toolflow::Report *r : {&cold, &warm}) {
        EXPECT_EQ(r->counts.total, uncached.counts.total);
        ASSERT_EQ(r->backend_metrics.size(),
                  uncached.backend_metrics.size());
        for (size_t i = 0; i < r->backend_metrics.size(); ++i)
            EXPECT_TRUE(sameMetrics(r->backend_metrics[i],
                                    uncached.backend_metrics[i]));
    }
}

/** Small mixed grid for the sharding tests: a generated app plus a
 *  caller-built circuit (forked workers must inherit the latter —
 *  it cannot be re-made from an AppKind). */
engine::SweepGrid
shardGrid()
{
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 engine::AppPoint(
                     std::make_shared<const circuit::Circuit>(
                         apps::generate(apps::AppKind::GSE, {8, 2})),
                     "gse-caller")};
    grid.backends = {engine::backends::surgery_sim};
    grid.distances = {3, 5};
    grid.base.seed = 21;
    return grid;
}

TEST(ShardedSweep, MergedRowsMatchSingleProcessAtEveryWidth)
{
    setQuiet(true);
    engine::SweepGrid grid = shardGrid();
    engine::SweepOptions opts;
    opts.num_threads = 1;
    opts.stream_rows = false;
    std::string expected = engine::canonicalSweepRows(
        engine::SweepDriver().run(grid, opts));

    for (int workers : {1, 2, 4}) {
        service::ShardOptions shard;
        shard.workers = workers;
        shard.sweep.num_threads = 1;
        shard.idle_timeout_sec = 120;
        std::vector<engine::SweepPoint> merged =
            service::runShardedSweep(grid, shard);
        EXPECT_EQ(engine::canonicalSweepRows(merged), expected)
            << workers << " workers";
    }
}

TEST(ShardedSweep, RejectsParentSideOptionsOnWorkers)
{
    setQuiet(true);
    service::ShardOptions shard;
    shard.workers = 0;
    EXPECT_THROW(service::runShardedSweep(shardGrid(), shard),
                 FatalError);

    shard.workers = 1;
    shard.sweep.point_filter = [](size_t) { return true; };
    EXPECT_THROW(service::runShardedSweep(shardGrid(), shard),
                 FatalError);
}

TEST(SweepRows, StreamedFileRoundTripsAndResumes)
{
    setQuiet(true);
    engine::SweepGrid grid = shardGrid();
    std::string path = testing::TempDir() + "/qsurf_rows.jsonl";
    std::remove(path.c_str());

    engine::SweepOptions opts;
    opts.num_threads = 1;
    opts.rows_path = path;
    std::vector<engine::SweepPoint> full =
        engine::SweepDriver().run(grid, opts);
    std::string expected = engine::canonicalSweepRows(full);

    // The streamed file loads back: every row accounted for.
    {
        std::vector<engine::SweepPoint> loaded =
            engine::expandSweepPoints(grid);
        std::vector<uint8_t> done(loaded.size(), 0);
        EXPECT_EQ(engine::loadSweepRows(path, grid, "", loaded,
                                        done),
                  full.size());
        EXPECT_EQ(engine::canonicalSweepRows(loaded), expected);
    }

    // Truncate to the header, one complete row, and a torn line —
    // the partial file a killed sweep leaves behind.
    {
        std::ifstream in(path);
        std::string header, row;
        ASSERT_TRUE(std::getline(in, header));
        ASSERT_TRUE(std::getline(in, row));
        in.close();
        std::ofstream out(path, std::ios::trunc);
        out << header << "\n" << row << "\n"
            << row.substr(0, row.size() / 2); // No newline: torn.
    }

    // Resume completes the missing points and the merged results
    // are identical to the uninterrupted run.
    engine::SweepOptions resume_opts = opts;
    resume_opts.resume = true;
    std::vector<engine::SweepPoint> resumed =
        engine::SweepDriver().run(grid, resume_opts);
    EXPECT_EQ(engine::canonicalSweepRows(resumed), expected);

    // And the rewritten row stream is complete again.
    std::vector<engine::SweepPoint> loaded =
        engine::expandSweepPoints(grid);
    std::vector<uint8_t> done(loaded.size(), 0);
    EXPECT_EQ(engine::loadSweepRows(path, grid, "", loaded, done),
              full.size());
    std::remove(path.c_str());
}

TEST(SweepRows, ShardedStreamMatchesSingleProcessStream)
{
    setQuiet(true);
    engine::SweepGrid grid = shardGrid();
    std::string single_path =
        testing::TempDir() + "/qsurf_rows_single.jsonl";
    std::string sharded_path =
        testing::TempDir() + "/qsurf_rows_sharded.jsonl";
    std::remove(single_path.c_str());
    std::remove(sharded_path.c_str());

    engine::SweepOptions opts;
    opts.num_threads = 1;
    opts.rows_path = single_path;
    engine::SweepDriver().run(grid, opts);

    service::ShardOptions shard;
    shard.workers = 2;
    shard.sweep.num_threads = 1;
    shard.sweep.rows_path = sharded_path;
    shard.idle_timeout_sec = 120;
    service::runShardedSweep(grid, shard);

    // Same grid, same rows: the two streams load to identical
    // results (on-disk order may differ — workers finish
    // asynchronously — so compare the merged documents).
    std::vector<engine::SweepPoint> single_pts =
        engine::expandSweepPoints(grid);
    std::vector<engine::SweepPoint> sharded_pts =
        engine::expandSweepPoints(grid);
    std::vector<uint8_t> done(single_pts.size(), 0);
    ASSERT_EQ(engine::loadSweepRows(single_path, grid, "",
                                    single_pts, done),
              static_cast<size_t>(grid.points()));
    done.assign(sharded_pts.size(), 0);
    ASSERT_EQ(engine::loadSweepRows(sharded_path, grid, "",
                                    sharded_pts, done),
              static_cast<size_t>(grid.points()));
    EXPECT_EQ(engine::canonicalSweepRows(sharded_pts),
              engine::canonicalSweepRows(single_pts));
    std::remove(single_path.c_str());
    std::remove(sharded_path.c_str());
}

TEST(DefaultThreads, EnvOverrideAndFallback)
{
    const char *saved = std::getenv("QSURF_THREADS");
    std::string saved_value = saved ? saved : "";

    ASSERT_EQ(setenv("QSURF_THREADS", "13", 1), 0);
    EXPECT_EQ(engine::defaultThreads(), 13);

    // Invalid values warn and fall back to the interactive clamp.
    ASSERT_EQ(setenv("QSURF_THREADS", "zero", 1), 0);
    int fallback = engine::defaultThreads();
    EXPECT_GE(fallback, 1);
    EXPECT_LE(fallback, 8);
    ASSERT_EQ(setenv("QSURF_THREADS", "0", 1), 0);
    fallback = engine::defaultThreads();
    EXPECT_GE(fallback, 1);
    EXPECT_LE(fallback, 8);

    if (saved)
        setenv("QSURF_THREADS", saved_value.c_str(), 1);
    else
        unsetenv("QSURF_THREADS");
}

} // namespace
} // namespace qsurf
