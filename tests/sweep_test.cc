/**
 * @file
 * Sweep-driver tests: grid expansion order, validation errors, JSON
 * emission, and — the engine's central guarantee — bit-identical
 * results for a fixed seed at thread counts 1, 2 and 8.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "engine/sweep.h"
#include "service/cache.h"

namespace qsurf::engine {
namespace {

/** A small but contention-bearing simulation grid. */
SweepGrid
simGrid()
{
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::SHA1, {8, 1}, ""}};
    grid.backends = {backends::double_defect, backends::planar};
    grid.policies = {0, 6};
    grid.distances = {5};
    grid.base.seed = 1234;
    return grid;
}

bool
identical(const Metrics &a, const Metrics &b)
{
    // Exact comparison on purpose: determinism means bit-identical
    // doubles, not approximately-equal ones.
    return a.backend == b.backend && a.code == b.code
        && a.code_distance == b.code_distance
        && a.schedule_cycles == b.schedule_cycles
        && a.critical_path_cycles == b.critical_path_cycles
        && a.physical_qubits == b.physical_qubits
        && a.seconds == b.seconds && a.extras == b.extras;
}

TEST(Sweep, GridPointCountAndExpansionOrder)
{
    SweepGrid grid = simGrid();
    EXPECT_EQ(grid.points(), 8u);

    SweepOptions opts;
    auto results = SweepDriver().run(grid, opts);
    ASSERT_EQ(results.size(), 8u);

    // App-major, backend-innermost.
    EXPECT_EQ(results[0].app_name, "SQ");
    EXPECT_EQ(results[0].backend, backends::double_defect);
    EXPECT_EQ(results[0].policy, 0);
    EXPECT_EQ(results[1].backend, backends::planar);
    EXPECT_EQ(results[2].policy, 6);
    EXPECT_EQ(results[4].app_name, "SHA-1");
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_GT(results[i].metrics.schedule_cycles, 0u);
    }
}

TEST(Sweep, DeterministicAcrossThreadCounts)
{
    SweepGrid grid = simGrid();

    SweepOptions opts1, opts2, opts8;
    opts1.num_threads = 1;
    opts2.num_threads = 2;
    opts8.num_threads = 8;

    SweepDriver driver;
    auto r1 = driver.run(grid, opts1);
    auto r2 = driver.run(grid, opts2);
    auto r8 = driver.run(grid, opts8);

    ASSERT_EQ(r1.size(), r2.size());
    ASSERT_EQ(r1.size(), r8.size());
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_TRUE(identical(r1[i].metrics, r2[i].metrics))
            << "1-thread vs 2-thread mismatch at point " << i;
        EXPECT_TRUE(identical(r1[i].metrics, r8[i].metrics))
            << "1-thread vs 8-thread mismatch at point " << i;
    }
}

TEST(Sweep, SeedChangesResults)
{
    SweepGrid grid = simGrid();
    auto r1 = SweepDriver().run(grid);
    grid.base.seed = 99;
    auto r2 = SweepDriver().run(grid);
    // Layout tie-breaking is seeded, so at least one contended point
    // should move.  (All points moving identically would be a seed
    // plumbing bug.)
    bool any_different = false;
    for (size_t i = 0; i < r1.size(); ++i)
        any_different = any_different
            || !identical(r1[i].metrics, r2[i].metrics);
    EXPECT_TRUE(any_different);
}

TEST(Sweep, PolicyAxisSharesOneSeededLayout)
{
    // Figure 6 compares policies on the same machine: seeds vary
    // per application point, never along the policy axis, so every
    // optimized-layout policy must see an identical layout.
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SHA1, {8, 1}, ""}};
    grid.backends = {backends::double_defect};
    grid.policies = {3, 6};
    grid.distances = {5};
    auto results = SweepDriver().run(grid);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_DOUBLE_EQ(results[0].metrics.extra("layout_cost"),
                     results[1].metrics.extra("layout_cost"));
}

TEST(Sweep, ModelBackendsSweepSizesWithoutCircuits)
{
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {}, ""}};
    grid.backends = {backends::planar_model,
                     backends::double_defect_model};
    grid.sizes = {1e4, 1e8, 1e12};
    grid.base.tech = qec::tech_points::futureOptimistic();

    auto results = SweepDriver().run(grid);
    ASSERT_EQ(results.size(), 6u);
    // Time grows with computation size for both codes.
    EXPECT_LT(results[0].metrics.seconds, results[2].metrics.seconds);
    EXPECT_LT(results[2].metrics.seconds, results[4].metrics.seconds);
    EXPECT_LT(results[1].metrics.seconds, results[3].metrics.seconds);
}

TEST(Sweep, EmptyAxesAreFatal)
{
    SweepGrid grid = simGrid();
    grid.backends.clear();
    EXPECT_THROW(SweepDriver().run(grid), FatalError);

    grid = simGrid();
    grid.apps.clear();
    EXPECT_THROW(SweepDriver().run(grid), FatalError);

    grid = simGrid();
    grid.policies.clear();
    EXPECT_THROW(SweepDriver().run(grid), FatalError);
}

TEST(Sweep, UnknownBackendIsFatalBeforeAnyWork)
{
    SweepGrid grid = simGrid();
    grid.backends = {"no-such-backend"};
    EXPECT_THROW(SweepDriver().run(grid), FatalError);
}

TEST(Sweep, BadPolicyIsFatalInPrepare)
{
    SweepGrid grid = simGrid();
    grid.policies = {42};
    EXPECT_THROW(SweepDriver().run(grid), FatalError);
}

TEST(Sweep, WritesParseableJson)
{
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""}};
    grid.backends = {backends::double_defect};
    grid.distances = {5};

    std::string path = "sweep_test_output.json";
    service::PrepareCache cache;
    SweepOptions opts;
    opts.json_path = path;
    opts.title = "sweep \"test\"";
    opts.cache = &cache;
    auto results = SweepDriver().run(grid, opts);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string json = ss.str();
    std::remove(path.c_str());

    for (const char *needle :
         {"\"title\"", "\"sweep \\\"test\\\"\"", "\"results\"",
          "\"backend\"", "\"double-defect\"", "\"schedule_cycles\"",
          "\"extras\"", "\"mesh_utilization\""})
        EXPECT_NE(json.find(needle), std::string::npos) << needle;

    std::ostringstream direct;
    writeSweepJson(direct, "sweep \"test\"", results, &cache);
    EXPECT_EQ(json, direct.str());
}

TEST(Sweep, DefaultThreadsInRange)
{
    int t = defaultThreads();
    EXPECT_GE(t, 1);
    EXPECT_LE(t, 8);
}

TEST(Sweep, LabelOverridesAppName)
{
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, "my-workload"}};
    grid.backends = {backends::planar};
    grid.distances = {5};
    auto results = SweepDriver().run(grid);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].app_name, "my-workload");
}

} // namespace
} // namespace qsurf::engine
