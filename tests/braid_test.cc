/**
 * @file
 * Braid-scheduler tests: critical-path model, completion and bound
 * properties under every policy (parameterized sweep), policy
 * ordering on parallel workloads, and the tiled architecture.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/apps.h"
#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "common/logging.h"

namespace qsurf::braid {
namespace {

using circuit::Circuit;
using circuit::GateKind;

Circuit
parallelWorkload()
{
    // Many concurrent long-range CNOTs: high contention risk.
    apps::GenOptions opts;
    opts.problem_size = 24;
    opts.max_iterations = 2;
    return circuit::decompose(
        apps::generate(apps::AppKind::IsingFull, opts));
}

Circuit
serialWorkload()
{
    apps::GenOptions opts;
    opts.problem_size = 8;
    opts.max_iterations = 2;
    return circuit::decompose(
        apps::generate(apps::AppKind::GSE, opts));
}

BraidOptions
smallOptions()
{
    BraidOptions opts;
    opts.code_distance = 3;
    return opts;
}

TEST(CriticalPath, SerialChainSumsLatencies)
{
    Circuit c(1);
    for (int i = 0; i < 4; ++i)
        c.addGate(GateKind::H, 0); // 1q: d cycles each
    EXPECT_EQ(braidCriticalPath(c, 5), 4u * 5u);
}

TEST(CriticalPath, TwoQubitLatency)
{
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1); // 2d+2
    EXPECT_EQ(braidCriticalPath(c, 5), 12u);
}

TEST(CriticalPath, TGateLatency)
{
    Circuit c(1);
    c.addGate(GateKind::T, 0); // d+1
    EXPECT_EQ(braidCriticalPath(c, 5), 6u);
}

TEST(CriticalPath, ParallelGatesShareLevels)
{
    Circuit c(4);
    for (int q = 0; q < 4; ++q)
        c.addGate(GateKind::H, q);
    EXPECT_EQ(braidCriticalPath(c, 7), 7u);
}

TEST(TiledArch, GeometryCoversQubits)
{
    Circuit c(10);
    c.addGate(GateKind::CNOT, 0, 9);
    auto graph = circuit::interactionGraph(c);
    TiledArch arch(graph, TiledArchOptions{});
    EXPECT_EQ(arch.numQubits(), 10);
    EXPECT_GE(arch.numFactories(), 1);
    // All terminals distinct and inside the mesh.
    auto mesh = arch.makeMesh();
    std::set<std::pair<int, int>> seen;
    for (int q = 0; q < 10; ++q) {
        Coord t = arch.terminal(q);
        EXPECT_TRUE(mesh.contains(t));
        EXPECT_TRUE(seen.insert({t.x, t.y}).second);
    }
    for (int f = 0; f < arch.numFactories(); ++f) {
        Coord t = arch.factoryTerminal(f);
        EXPECT_TRUE(mesh.contains(t));
        EXPECT_TRUE(seen.insert({t.x, t.y}).second)
            << "factory terminal collides with a data tile";
    }
}

TEST(TiledArch, FactoriesSortedByDistance)
{
    Circuit c(30);
    c.addGate(GateKind::H, 0);
    auto graph = circuit::interactionGraph(c);
    TiledArch arch(graph, TiledArchOptions{});
    auto order = arch.factoriesByDistance(0);
    ASSERT_EQ(static_cast<int>(order.size()), arch.numFactories());
    for (size_t i = 0; i + 1 < order.size(); ++i)
        EXPECT_LE(manhattan(arch.terminal(0),
                            arch.factoryTerminal(order[i])),
                  manhattan(arch.terminal(0),
                            arch.factoryTerminal(order[i + 1])));
}

TEST(TiledArch, OptimizedLayoutShortensInteractions)
{
    // SHA-1's word registers interact across distant qubit ids, so
    // the naive row-major arrangement is poor and the interaction-
    // aware layout must shorten braid routes (Section 6.2).
    apps::GenOptions gopts;
    gopts.problem_size = 8;
    gopts.max_iterations = 2;
    Circuit c = apps::generate(apps::AppKind::SHA1, gopts);
    auto graph = circuit::interactionGraph(c);

    TiledArchOptions naive;
    naive.optimized_layout = false;
    TiledArchOptions opt;
    opt.optimized_layout = true;
    double naive_cost = TiledArch(graph, naive).layoutCost(graph);
    double opt_cost = TiledArch(graph, opt).layoutCost(graph);
    EXPECT_LT(opt_cost, naive_cost);
}

TEST(Scheduler, RejectsEmptyAndUndistilled)
{
    Circuit empty(2);
    EXPECT_THROW(scheduleBraids(empty, Policy::Combined),
                 qsurf::FatalError);
    Circuit tof(3);
    tof.addGate(GateKind::Toffoli, 0, 1, 2);
    EXPECT_THROW(scheduleBraids(tof, Policy::Combined),
                 qsurf::FatalError);
}

TEST(Scheduler, SingleGateCompletes)
{
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1);
    BraidResult r =
        scheduleBraids(c, Policy::Combined, smallOptions());
    EXPECT_EQ(r.braids_placed, 2u) << "two segments per 2q op";
    EXPECT_GE(r.schedule_cycles, r.critical_path_cycles);
}

TEST(Scheduler, PolicyNamesAreStable)
{
    EXPECT_STREQ(policyName(Policy::ProgramOrder), "Policy 0");
    EXPECT_STREQ(policyName(Policy::Combined), "Policy 6");
}

/** Parameterized across all 7 policies: universal invariants. */
class PolicySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PolicySweep, CompletesAndBoundsHold)
{
    auto policy = static_cast<Policy>(GetParam());
    Circuit c = parallelWorkload();
    BraidResult r = scheduleBraids(c, policy, smallOptions());

    // The schedule can never beat the dependence-limited bound.
    EXPECT_GE(r.schedule_cycles, r.critical_path_cycles);
    EXPECT_GT(r.critical_path_cycles, 0u);
    EXPECT_GE(r.mesh_utilization, 0.0);
    EXPECT_LE(r.mesh_utilization, 1.0);
    // Every 2q op contributes 2 segments, every T op 1.
    circuit::OpCounts k = c.counts();
    EXPECT_EQ(r.braids_placed, 2 * k.two_qubit + k.t_gates);
}

TEST_P(PolicySweep, DeterministicRerun)
{
    auto policy = static_cast<Policy>(GetParam());
    Circuit c = serialWorkload();
    BraidResult a = scheduleBraids(c, policy, smallOptions());
    BraidResult b = scheduleBraids(c, policy, smallOptions());
    EXPECT_EQ(a.schedule_cycles, b.schedule_cycles);
    EXPECT_EQ(a.braids_placed, b.braids_placed);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Range(0, num_policies));

TEST(PolicyOrdering, InterleavingBeatsProgramOrderOnParallelApps)
{
    Circuit c = parallelWorkload();
    BraidOptions opts = smallOptions();
    BraidResult p0 = scheduleBraids(c, Policy::ProgramOrder, opts);
    BraidResult p1 = scheduleBraids(c, Policy::Interleave, opts);
    EXPECT_LT(p1.schedule_cycles, p0.schedule_cycles)
        << "event interleaving must help a parallel app";
}

TEST(PolicyOrdering, CombinedPolicyNearCriticalPath)
{
    Circuit c = parallelWorkload();
    BraidOptions opts = smallOptions();
    BraidResult p0 = scheduleBraids(c, Policy::ProgramOrder, opts);
    BraidResult p6 = scheduleBraids(c, Policy::Combined, opts);
    EXPECT_LT(p6.schedule_cycles, p0.schedule_cycles);
    // Figure 6: the best policy lands within a small factor of the
    // critical path for parallel apps.
    EXPECT_LT(p6.ratio(), 4.0)
        << "Policy 6 should approach the critical path";
}

TEST(PolicyOrdering, SerialAppsAlreadyNearCriticalPath)
{
    Circuit c = serialWorkload();
    BraidResult r =
        scheduleBraids(c, Policy::Interleave, smallOptions());
    // Section 6.3: "serial applications already achieve
    // close-to-critical-path schedules".
    EXPECT_LT(r.ratio(), 2.0);
}

TEST(PolicyOrdering, UtilizationRisesWithBetterPolicies)
{
    Circuit c = parallelWorkload();
    BraidOptions opts = smallOptions();
    BraidResult p0 = scheduleBraids(c, Policy::ProgramOrder, opts);
    BraidResult p6 = scheduleBraids(c, Policy::Combined, opts);
    EXPECT_GT(p6.mesh_utilization, p0.mesh_utilization)
        << "denser schedules use the mesh harder (Figure 6)";
}

} // namespace
} // namespace qsurf::braid
