/**
 * @file
 * Lattice-surgery simulator tests: corridor-route construction, the
 * chain-claiming mesh semantics (contention serialization on a
 * shared corridor), agreement with the analytic Section 8.2 model's
 * latency trends (monotone in chain length and code distance), the
 * engine integration, and — the engine's central guarantee — sweep
 * results bit-identical at thread counts 1, 2 and 8.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "circuit/circuit.h"
#include "circuit/interaction.h"
#include "common/logging.h"
#include "engine/sim.h"
#include "engine/sweep.h"
#include "estimate/lattice_surgery.h"
#include "surgery/backend.h"
#include "surgery/chain_scheduler.h"
#include "toolflow/toolflow.h"

namespace qsurf::surgery {
namespace {

/** A chain machine with one CNOT between the end qubits. */
circuit::Circuit
endToEndCnot(int num_qubits)
{
    circuit::Circuit c("dist-probe", num_qubits);
    c.addGate(circuit::GateKind::CNOT, 0,
              static_cast<int32_t>(num_qubits - 1));
    return c;
}

/** A 2x2 patch machine (4 qubits, naive layout). */
PatchArch
fourQubitArch()
{
    circuit::Circuit c("probe", 4);
    c.addGate(circuit::GateKind::CNOT, 0, 3);
    PatchArchOptions opts;
    opts.optimized_layout = false;
    return PatchArch(circuit::interactionGraph(c), opts);
}

SurgeryOptions
naiveOptions(int d = 5)
{
    SurgeryOptions opts;
    opts.code_distance = d;
    opts.optimized_layout = false;
    return opts;
}

/** A patch machine over @p nq qubits with the given layout options. */
PatchArch
archWith(int nq, partition::LayoutObjective objective,
         int lane_spacing = 4, bool optimized = false)
{
    circuit::Circuit c("probe", nq);
    for (int32_t q = 0; q + 1 < nq; ++q)
        c.addGate(circuit::GateKind::CNOT, q, q + 1);
    c.addGate(circuit::GateKind::CNOT, 0,
              static_cast<int32_t>(nq - 1));
    PatchArchOptions opts;
    opts.optimized_layout = optimized;
    opts.layout_objective = objective;
    opts.lane_spacing = lane_spacing;
    return PatchArch(circuit::interactionGraph(c), opts);
}

/** Every patch cell of @p arch (data qubits and factories). */
std::vector<Coord>
allPatches(const PatchArch &arch)
{
    std::vector<Coord> out;
    for (int32_t q = 0; q < arch.numQubits(); ++q)
        out.push_back(arch.patchOf(q));
    for (int f = 0; f < arch.numFactories(); ++f)
        out.push_back(arch.factoryPatch(f));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

/** Mesh router at the center of patch cell @p p. */
Coord
centerOf(const PatchArch &arch, const Coord &p)
{
    for (int32_t q = 0; q < arch.numQubits(); ++q)
        if (arch.patchOf(q) == p)
            return arch.terminal(q);
    for (int f = 0; f < arch.numFactories(); ++f)
        if (arch.factoryPatch(f) == p)
            return arch.factoryTerminal(f);
    ADD_FAILURE() << "no patch at " << p;
    return Coord{};
}

/** Interior (non-endpoint) nodes of @p path. */
std::set<Coord>
interiorOf(const network::Path &path)
{
    std::set<Coord> out;
    for (size_t i = 1; i + 1 < path.nodes.size(); ++i)
        out.insert(path.nodes[i]);
    return out;
}

TEST(PatchArch, CorridorRoutesAvoidOtherPatches)
{
    PatchArch arch = fourQubitArch();
    for (bool yx : {false, true}) {
        network::Path p =
            arch.corridorRoute(arch.terminal(0), arch.terminal(3), yx);
        EXPECT_EQ(p.source(), arch.terminal(0));
        EXPECT_EQ(p.dest(), arch.terminal(3));
        for (size_t i = 1; i + 1 < p.nodes.size(); ++i) {
            const Coord &c = p.nodes[i];
            EXPECT_TRUE(c.x % 2 == 0 || c.y % 2 == 0)
                << "interior corridor node " << c
                << " is a patch center";
        }
        // Consecutive nodes are mesh-adjacent.
        for (size_t i = 1; i < p.nodes.size(); ++i)
            EXPECT_EQ(manhattan(p.nodes[i - 1], p.nodes[i]), 1);
    }
}

TEST(PatchArch, AdjacentPatchesMergeDirectly)
{
    PatchArch arch = fourQubitArch();
    network::Path p =
        arch.corridorRoute(arch.terminal(0), arch.terminal(1), false);
    EXPECT_EQ(p.hops(), 2);
    EXPECT_EQ(PatchArch::chainTiles(p.hops()), 1);
}

TEST(PatchArch, ChainTilesRoundsUp)
{
    EXPECT_EQ(PatchArch::chainTiles(2), 1);
    EXPECT_EQ(PatchArch::chainTiles(3), 2);
    EXPECT_EQ(PatchArch::chainTiles(4), 2);
    EXPECT_EQ(PatchArch::chainTiles(7), 4);
}

TEST(PatchArch, CollinearPrimaryAndFallbackCorridorsAreDisjoint)
{
    // Regression: the old tie-break sent both the primary and the
    // "transposed" corridor of a collinear pair to the same side
    // (row y+1 / column x+1), so contended same-row/column merges
    // had zero route diversity.  The fallback must mirror to the
    // opposite side, making the two interiors disjoint.
    PatchArch arch =
        archWith(16, partition::LayoutObjective::BraidManhattan);
    std::vector<Coord> patches = allPatches(arch);
    int checked = 0;
    for (const Coord &a : patches) {
        for (const Coord &b : patches) {
            if (a == b || (a.x != b.x && a.y != b.y)
                || manhattan(a, b) < 2)
                continue;
            network::Path primary = arch.corridorRoute(
                centerOf(arch, a), centerOf(arch, b), false);
            network::Path fallback = arch.corridorRoute(
                centerOf(arch, a), centerOf(arch, b), true);
            std::set<Coord> pi = interiorOf(primary);
            for (const Coord &c : interiorOf(fallback))
                EXPECT_EQ(pi.count(c), 0u)
                    << "collinear pair " << a << " -> " << b
                    << " shares corridor node " << c;
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(PatchArch, TransposeFallbackRelievesCollinearCollision)
{
    // Two vertex-disjoint same-row merges whose primary corridors
    // overlap on the shared row: with the mirrored fallback the
    // second chain escapes to the opposite side; with the old
    // same-side fallback both geometries collided and the op could
    // only stall toward a BFS detour.
    PatchArch arch =
        archWith(16, partition::LayoutObjective::BraidManhattan);
    network::Mesh mesh = arch.makeMesh();
    engine::RouteClaimOptions copts;
    engine::ChainClaimer claimer(mesh, copts);
    for (const Coord &t : arch.reservedTerminals())
        claimer.reserveTerminal(t);

    // Row 1 of the 4x4 data grid: qubits 4..7.
    auto routes = [&](int32_t qa, int32_t qb, bool yx) {
        return arch.corridorRoute(arch.terminal(qa),
                                  arch.terminal(qb), yx);
    };
    auto first = claimer.tryClaim(routes(4, 6, false),
                                  routes(4, 6, true), /*owner=*/0,
                                  /*wait=*/0);
    ASSERT_TRUE(first.has_value());

    // The primaries overlap, so an un-escalated claim fails...
    EXPECT_FALSE(claimer
                     .tryClaim(routes(5, 7, false), routes(5, 7, true),
                               1, /*wait=*/0)
                     .has_value());
    // ... and the escalated claim succeeds via the mirrored
    // transposed corridor (not a BFS detour).
    auto second = claimer.tryClaim(routes(5, 7, false),
                                   routes(5, 7, true), 1,
                                   copts.adapt_timeout);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(claimer.transposeFallbacks(), 1u);
    EXPECT_EQ(claimer.bfsDetours(), 0u);
}

TEST(PatchArch, CorridorRouteInvariantsUnderAllOptions)
{
    using partition::LayoutObjective;
    struct Config
    {
        LayoutObjective objective;
        int lane_spacing;
        bool optimized;
    };
    const std::vector<Config> configs = {
        {LayoutObjective::BraidManhattan, 4, false},
        {LayoutObjective::Corridor, 4, true},
        {LayoutObjective::CorridorLanes, 2, false},
        {LayoutObjective::CorridorLanes, 2, true},
        {LayoutObjective::CorridorLanes, 3, true},
    };
    for (const Config &cfg : configs) {
        PatchArch arch = archWith(19, cfg.objective,
                                  cfg.lane_spacing, cfg.optimized);
        std::vector<Coord> reserved;
        for (const Coord &t : arch.reservedTerminals())
            reserved.push_back(t);
        std::set<Coord> terminals(reserved.begin(), reserved.end());
        std::vector<Coord> patches = allPatches(arch);
        // Patch-center coordinate lines: any (x, y) with both on a
        // center line is a patch-cell center (occupied or not) — the
        // lane-generalized form of "corridors live on even
        // coordinates".
        std::set<int> center_xs, center_ys;
        for (const Coord &t : reserved) {
            center_xs.insert(t.x);
            center_ys.insert(t.y);
        }
        for (const Coord &a : patches) {
            for (const Coord &b : patches) {
                if (a == b)
                    continue;
                Coord ca = centerOf(arch, a), cb = centerOf(arch, b);
                for (bool yx : {false, true}) {
                    network::Path p = arch.corridorRoute(ca, cb, yx);
                    EXPECT_EQ(p.source(), ca);
                    EXPECT_EQ(p.dest(), cb);
                    for (size_t i = 1; i < p.nodes.size(); ++i)
                        EXPECT_EQ(manhattan(p.nodes[i - 1],
                                            p.nodes[i]),
                                  1)
                            << a << " -> " << b;
                    for (const Coord &c : interiorOf(p)) {
                        EXPECT_GE(c.x, 0);
                        EXPECT_LT(c.x, arch.meshWidth());
                        EXPECT_GE(c.y, 0);
                        EXPECT_LT(c.y, arch.meshHeight());
                        EXPECT_EQ(terminals.count(c), 0u)
                            << "route " << a << " -> " << b
                            << " crosses reserved terminal " << c;
                        EXPECT_FALSE(center_xs.count(c.x)
                                     && center_ys.count(c.y))
                            << "route " << a << " -> " << b
                            << " leaves the corridor grid at " << c;
                    }
                    // Route length: the router-coordinate Manhattan
                    // distance, plus the 2-hop detour of collinear
                    // non-adjacent pairs.  Lane routes cost no extra
                    // hops (the lane lies across the span).
                    bool collinear = (a.x == b.x || a.y == b.y)
                        && manhattan(a, b) >= 2;
                    EXPECT_EQ(p.hops(),
                              manhattan(ca, cb) + (collinear ? 2 : 0))
                        << a << " -> " << b << " yx=" << yx;
                }
            }
        }
    }
}

TEST(PatchArch, CorridorMetricMatchesRouteGeometry)
{
    // partition::corridorTiles — the layout-objective edge cost —
    // must price exactly what PatchArch::corridorRoute builds, with
    // and without dedicated lanes (lane bands crossed cost one tile
    // each, and rides along a lane add no hops).
    struct Config
    {
        partition::LayoutObjective objective;
        int lane_spacing; ///< Metric spacing; 0 when lanes are off.
    };
    const std::vector<Config> configs = {
        {partition::LayoutObjective::Corridor, 0},
        {partition::LayoutObjective::CorridorLanes, 2},
        {partition::LayoutObjective::CorridorLanes, 3},
    };
    for (const Config &cfg : configs) {
        PatchArch arch = archWith(19, cfg.objective,
                                  std::max(1, cfg.lane_spacing),
                                  true);
        std::vector<Coord> patches = allPatches(arch);
        for (const Coord &a : patches) {
            for (const Coord &b : patches) {
                if (a == b)
                    continue;
                for (bool yx : {false, true}) {
                    network::Path p = arch.corridorRoute(
                        centerOf(arch, a), centerOf(arch, b), yx);
                    EXPECT_EQ(PatchArch::chainTiles(p.hops()),
                              partition::corridorTiles(
                                  a, b, cfg.lane_spacing))
                        << a << " -> " << b << " yx=" << yx
                        << " spacing=" << cfg.lane_spacing;
                }
            }
        }
    }
}

TEST(PatchArch, LanesAreSizedIntoTheMesh)
{
    // 19 qubits: 5x4 data grid + factory column -> 6x4 patches.
    // Spacing 2 puts lane columns at patch boundaries 2 and 4 and a
    // lane row at boundary 2, each two mesh lines wide (the lane and
    // its far-side corridor).
    PatchArch arch = archWith(
        19, partition::LayoutObjective::CorridorLanes, 2);
    EXPECT_EQ(arch.patchWidth(), 6);
    EXPECT_EQ(arch.patchHeight(), 4);
    EXPECT_EQ(arch.numLaneCols(), 2);
    EXPECT_EQ(arch.numLaneRows(), 1);
    EXPECT_EQ(arch.meshWidth(), 2 * 6 + 1 + 2 * 2);
    EXPECT_EQ(arch.meshHeight(), 2 * 4 + 1 + 2 * 1);
    EXPECT_GT(arch.laneAreaFactor(), 1.0);

    // Without lanes the same machine keeps the compact mesh.
    PatchArch flat =
        archWith(19, partition::LayoutObjective::Corridor, 2);
    EXPECT_EQ(flat.meshWidth(), 2 * 6 + 1);
    EXPECT_EQ(flat.meshHeight(), 2 * 4 + 1);
    EXPECT_EQ(flat.numLaneRows() + flat.numLaneCols(), 0);
    EXPECT_DOUBLE_EQ(flat.laneAreaFactor(), 1.0);

    // Lane rows/columns never coincide with patch centers.
    for (const Coord &p : allPatches(arch)) {
        Coord c = centerOf(arch, p);
        EXPECT_FALSE(arch.isLaneRow(c.y));
        EXPECT_FALSE(arch.isLaneCol(c.x));
    }
}

TEST(PatchArch, LongHaulsRideTheLanes)
{
    PatchArch arch = archWith(
        19, partition::LayoutObjective::CorridorLanes, 2);
    // Diagonal long haul crossing the lane row (patch rows 0 -> 3)
    // and a lane column (patch columns 0 -> 3).
    Coord a{0, 0}, b{3, 3};
    network::Path primary =
        arch.corridorRoute(centerOf(arch, a), centerOf(arch, b),
                           false);
    bool rides_lane_row = false;
    for (const Coord &c : interiorOf(primary))
        rides_lane_row |= arch.isLaneRow(c.y);
    EXPECT_TRUE(rides_lane_row)
        << "XY long haul should run its horizontal leg on a lane";

    network::Path fallback =
        arch.corridorRoute(centerOf(arch, a), centerOf(arch, b),
                           true);
    bool rides_lane_col = false;
    for (const Coord &c : interiorOf(fallback))
        rides_lane_col |= arch.isLaneCol(c.x);
    EXPECT_TRUE(rides_lane_col)
        << "YX long haul should run its vertical leg on a lane";

    // A local merge inside one lane band stays off the lanes.
    network::Path local = arch.corridorRoute(
        centerOf(arch, Coord{0, 0}), centerOf(arch, Coord{1, 1}),
        false);
    for (const Coord &c : interiorOf(local)) {
        EXPECT_FALSE(arch.isLaneRow(c.y)) << c;
        EXPECT_FALSE(arch.isLaneCol(c.x)) << c;
    }
}

TEST(Scheduler, LayoutObjectivesRunAndStayConsistent)
{
    // The corridor objectives must complete the same program and
    // report a corridor cost no worse than the Manhattan layout's
    // (the refinement never worsens its own objective).
    circuit::Circuit circ("mixed", 9);
    for (int32_t q = 0; q + 1 < 9; ++q)
        circ.addGate(circuit::GateKind::CNOT, q, q + 1);
    circ.addGate(circuit::GateKind::CNOT, 0, 8);
    circ.addGate(circuit::GateKind::T, 4);

    SurgeryOptions opts;
    opts.code_distance = 3;
    opts.optimized_layout = true;
    opts.layout_objective = partition::LayoutObjective::BraidManhattan;
    SurgeryResult manhattan_r = scheduleSurgery(circ, opts);

    opts.layout_objective = partition::LayoutObjective::Corridor;
    SurgeryResult corridor_r = scheduleSurgery(circ, opts);
    EXPECT_LE(corridor_r.corridor_cost, manhattan_r.corridor_cost);
    EXPECT_EQ(corridor_r.chains_placed, manhattan_r.chains_placed);
    EXPECT_DOUBLE_EQ(corridor_r.lane_area_factor, 1.0);

    opts.layout_objective = partition::LayoutObjective::CorridorLanes;
    opts.lane_spacing = 2;
    SurgeryResult lanes_r = scheduleSurgery(circ, opts);
    EXPECT_GT(lanes_r.lane_area_factor, 1.0);
    EXPECT_GT(lanes_r.schedule_cycles, 0u);
}

TEST(ChainClaimer, ContendingChainsSerializeOnSharedCorridor)
{
    PatchArch arch = fourQubitArch();
    network::Mesh mesh = arch.makeMesh();
    engine::RouteClaimOptions copts;
    engine::ChainClaimer claimer(mesh, copts);
    for (const Coord &t : arch.reservedTerminals())
        claimer.reserveTerminal(t);

    // Diagonal chain 0 -> 3 claims the central corridor.
    auto first = claimer.tryClaim(
        arch.corridorRoute(arch.terminal(0), arch.terminal(3), false),
        arch.corridorRoute(arch.terminal(0), arch.terminal(3), true),
        /*owner=*/0, /*wait=*/0);
    ASSERT_TRUE(first.has_value());

    // The crossing chain 1 -> 2 shares that corridor: both preferred
    // geometries conflict, so placement must fail until the first
    // chain releases (the braid-style congestion of Section 8.2).
    network::Path primary =
        arch.corridorRoute(arch.terminal(1), arch.terminal(2), false);
    network::Path fallback =
        arch.corridorRoute(arch.terminal(1), arch.terminal(2), true);
    EXPECT_FALSE(
        claimer.tryClaim(primary, fallback, 1, copts.adapt_timeout)
            .has_value());

    claimer.release(*first, 0);
    auto second = claimer.tryClaim(primary, fallback, 1, 0);
    EXPECT_TRUE(second.has_value());
}

TEST(ChainClaimer, ReleaseRestoresPatchReservations)
{
    PatchArch arch = fourQubitArch();
    network::Mesh mesh = arch.makeMesh();
    engine::RouteClaimOptions copts;
    engine::ChainClaimer claimer(mesh, copts);
    for (const Coord &t : arch.reservedTerminals())
        claimer.reserveTerminal(t);

    Coord t0 = arch.terminal(0), t3 = arch.terminal(3);
    EXPECT_NE(mesh.nodeOwner(t0), network::Mesh::no_owner);
    auto chain = claimer.tryClaim(arch.corridorRoute(t0, t3, false),
                                  arch.corridorRoute(t0, t3, true),
                                  7, 0);
    ASSERT_TRUE(chain.has_value());
    EXPECT_EQ(mesh.nodeOwner(t0), 7);
    claimer.release(*chain, 7);
    // The patch terminals are reserved again, the corridor is free.
    EXPECT_NE(mesh.nodeOwner(t0), network::Mesh::no_owner);
    EXPECT_NE(mesh.nodeOwner(t0), 7);
    for (size_t i = 1; i + 1 < chain->nodes.size(); ++i)
        EXPECT_EQ(mesh.nodeOwner(chain->nodes[i]),
                  network::Mesh::no_owner);
}

TEST(Scheduler, SharedCorridorCostsMoreThanDisjointMerges)
{
    // Naive 2x2 layout: (0,1) and (2,3) merge through disjoint
    // boundary routers and may run concurrently; (0,3) and (1,2)
    // cross in the central corridor and must serialize or detour.
    circuit::Circuit disjoint("disjoint", 4);
    disjoint.addGate(circuit::GateKind::CNOT, 0, 1);
    disjoint.addGate(circuit::GateKind::CNOT, 2, 3);

    circuit::Circuit crossing("crossing", 4);
    crossing.addGate(circuit::GateKind::CNOT, 0, 3);
    crossing.addGate(circuit::GateKind::CNOT, 1, 2);

    SurgeryResult r_disjoint =
        scheduleSurgery(disjoint, naiveOptions());
    SurgeryResult r_crossing =
        scheduleSurgery(crossing, naiveOptions());
    EXPECT_GT(r_crossing.schedule_cycles,
              r_disjoint.schedule_cycles);
    EXPECT_GT(r_crossing.placement_failures, 0u);
}

TEST(Scheduler, ChainCostMonotoneInDistanceLikeTheModel)
{
    // The analytic model (Section 8.2) charges rounds_per_hop * d
    // cycles per chain tile; the simulated chain must grow the same
    // way as d rises on a fixed machine.
    circuit::Circuit c = endToEndCnot(16);
    uint64_t prev = 0;
    for (int d : {3, 5, 9}) {
        SurgeryResult r = scheduleSurgery(c, naiveOptions(d));
        EXPECT_GT(r.schedule_cycles, prev)
            << "schedule must grow with code distance d=" << d;
        prev = r.schedule_cycles;
    }
}

TEST(Scheduler, ChainCostMonotoneInHopsLikeTheModel)
{
    // ... and with chain length (machine size) at fixed d, like the
    // model's rounds_per_hop * d * route_len term.
    uint64_t prev = 0;
    for (int n : {4, 16, 64}) {
        SurgeryResult r =
            scheduleSurgery(endToEndCnot(n), naiveOptions());
        EXPECT_GT(r.schedule_cycles, prev)
            << "schedule must grow with separation, n=" << n;
        prev = r.schedule_cycles;
    }
    // The analytic estimate shows the same trend over machine size.
    qec::Technology tech;
    tech.p_physical = 1e-8;
    estimate::ResourceModel model(apps::AppKind::SQ, tech);
    EXPECT_GT(estimate::estimateSurgery(model, 1e12).step_cycles,
              estimate::estimateSurgery(model, 1e4).step_cycles);
}

TEST(Scheduler, ScheduleIsBoundedBelowByCriticalPath)
{
    for (int n : {4, 9, 25}) {
        circuit::Circuit c = endToEndCnot(n);
        SurgeryOptions opts = naiveOptions();
        SurgeryResult r = scheduleSurgery(c, opts);
        EXPECT_GE(r.schedule_cycles, r.critical_path_cycles);
        EXPECT_GT(r.critical_path_cycles, 0u);
        EXPECT_EQ(r.chains_placed, 1u);
        EXPECT_GE(r.max_chain_tiles, 1u);
    }
}

TEST(Backend, RegistryHasSurgeryBackends)
{
    engine::Registry &r = engine::Registry::global();
    EXPECT_TRUE(r.contains("planar/surgery-sim"));
    EXPECT_TRUE(r.contains("planar/surgery-model"));
    EXPECT_TRUE(r.contains(engine::backends::surgery_sim));
    EXPECT_TRUE(r.contains(engine::backends::surgery_model));
}

TEST(Backend, SimMatchesDirectSimulation)
{
    apps::GenOptions gen;
    gen.problem_size = 8;
    gen.max_iterations = 2;
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, gen));

    engine::WorkItem item;
    item.circuit = &circ;
    item.config.code_distance = 5;
    item.config.seed = 7;

    SurgeryOptions opts;
    opts.code_distance = 5;
    opts.seed = 7;
    SurgeryResult direct = scheduleSurgery(circ, opts);

    const engine::Backend &b =
        engine::Registry::global().get(engine::backends::surgery_sim);
    engine::Metrics m = b.run(item);
    EXPECT_EQ(m.schedule_cycles, direct.schedule_cycles);
    EXPECT_EQ(m.critical_path_cycles, direct.critical_path_cycles);
    EXPECT_DOUBLE_EQ(m.extra("mesh_utilization"),
                     direct.mesh_utilization);
    EXPECT_EQ(m.code, qec::CodeKind::Planar);
    EXPECT_DOUBLE_EQ(
        m.physical_qubits,
        surgeryPhysicalQubits(
            static_cast<double>(circ.numQubits()), 5));
}

TEST(Backend, ModelMatchesDirectEstimate)
{
    engine::WorkItem item;
    item.app = apps::AppKind::SQ;
    item.config.kq = 1e8;
    item.config.tech = qec::tech_points::futureOptimistic();

    estimate::ResourceModel model(apps::AppKind::SQ,
                                  item.config.tech);
    estimate::ResourceEstimate direct =
        estimate::estimateSurgery(model, 1e8);

    const engine::Backend &b = engine::Registry::global().get(
        engine::backends::surgery_model);
    EXPECT_FALSE(b.needsCircuit());
    engine::Metrics m = b.run(item);
    EXPECT_EQ(m.code_distance, direct.code_distance);
    EXPECT_DOUBLE_EQ(m.physical_qubits, direct.physical_qubits);
    EXPECT_DOUBLE_EQ(m.seconds, direct.seconds);
}

TEST(Backend, ToolflowDrivesSurgeryViaRegistry)
{
    apps::GenOptions gen;
    gen.problem_size = 8;
    gen.max_iterations = 2;
    circuit::Circuit circ =
        apps::generate(apps::AppKind::SQ, gen);

    toolflow::Config config;
    config.backends = {engine::backends::planar,
                       engine::backends::surgery_sim};
    toolflow::Report report = toolflow::run(circ, config);
    ASSERT_EQ(report.backend_metrics.size(), 2u);
    EXPECT_EQ(report.backend_metrics[1].backend,
              engine::backends::surgery_sim);
    EXPECT_GT(report.backend_metrics[1].schedule_cycles, 0u);
    // Surgery cannot beat the planar machine it shares a footprint
    // with: same patches, but chains instead of prefetched EPRs.
    EXPECT_GE(report.backend_metrics[1].schedule_cycles,
              report.backend_metrics[0].schedule_cycles);
}

bool
identical(const engine::Metrics &a, const engine::Metrics &b)
{
    // Exact comparison on purpose: determinism means bit-identical
    // doubles, not approximately-equal ones.
    return a.backend == b.backend && a.code == b.code
        && a.code_distance == b.code_distance
        && a.schedule_cycles == b.schedule_cycles
        && a.critical_path_cycles == b.critical_path_cycles
        && a.physical_qubits == b.physical_qubits
        && a.seconds == b.seconds && a.extras == b.extras;
}

TEST(Sweep, SurgeryDeterministicAcrossThreadCounts)
{
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::SHA1, {8, 1}, ""}};
    grid.backends = {engine::backends::surgery_sim};
    grid.distances = {3, 5};
    grid.base.seed = 1234;

    engine::SweepOptions opts1, opts2, opts8;
    opts1.num_threads = 1;
    opts2.num_threads = 2;
    opts8.num_threads = 8;

    engine::SweepDriver driver;
    auto r1 = driver.run(grid, opts1);
    auto r2 = driver.run(grid, opts2);
    auto r8 = driver.run(grid, opts8);

    ASSERT_EQ(r1.size(), 4u);
    ASSERT_EQ(r1.size(), r2.size());
    ASSERT_EQ(r1.size(), r8.size());
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_TRUE(identical(r1[i].metrics, r2[i].metrics))
            << "1-thread vs 2-thread mismatch at point " << i;
        EXPECT_TRUE(identical(r1[i].metrics, r8[i].metrics))
            << "1-thread vs 8-thread mismatch at point " << i;
    }
}

TEST(PatchArch, LayoutNeverPlacesOnDeadPatches)
{
    circuit::Circuit c("probe", 9);
    for (int32_t q = 0; q + 1 < 9; ++q)
        c.addGate(circuit::GateKind::CNOT, q, q + 1);
    for (bool optimized : {false, true}) {
        PatchArchOptions opts;
        opts.optimized_layout = optimized;
        opts.defects.density = 0.2;
        opts.defects.seed = 11;
        PatchArch arch(circuit::interactionGraph(c), opts);
        ASSERT_GT(arch.defects().numDeadTiles(), 0)
            << "damage did not materialize; pick another seed";
        std::set<Coord> seen;
        for (int32_t q = 0; q < arch.numQubits(); ++q) {
            Coord p = arch.patchOf(q);
            EXPECT_FALSE(arch.defects().deadTile(p.x, p.y))
                << "qubit " << q << " placed on dead patch " << p;
            EXPECT_TRUE(seen.insert(p).second)
                << "qubit " << q << " shares patch " << p;
        }
        for (int f = 0; f < arch.numFactories(); ++f) {
            Coord p = arch.factoryPatch(f);
            EXPECT_FALSE(arch.defects().deadTile(p.x, p.y))
                << "factory " << f << " on dead patch " << p;
        }
    }
}

TEST(PatchArch, CorridorRouteFlipsAwayFromDisabledCoupler)
{
    // A chain machine wide enough for a same-row non-adjacent pair.
    circuit::Circuit c("probe", 6);
    for (int32_t q = 0; q + 1 < 6; ++q)
        c.addGate(circuit::GateKind::CNOT, q, q + 1);
    PatchArchOptions healthy_opts;
    healthy_opts.optimized_layout = false;
    PatchArch healthy(circuit::interactionGraph(c), healthy_opts);

    // Find a same-row pair at least two columns apart; its primary
    // corridor runs along the +1 side row, stepping down from the
    // source column first.
    int32_t qa = -1, qb = -1;
    for (int32_t a = 0; a < 6 && qa < 0; ++a)
        for (int32_t b = 0; b < 6; ++b) {
            Coord pa = healthy.patchOf(a), pb = healthy.patchOf(b);
            if (pa.y == pb.y && pb.x - pa.x >= 2
                && pa.y + 1 < healthy.patchHeight()) {
                qa = a;
                qb = b;
                break;
            }
        }
    ASSERT_GE(qa, 0) << "no same-row pair in the naive layout";
    Coord pa = healthy.patchOf(qa);

    // Break the coupler below the source patch: its straight mesh
    // segment crosses the +1 side corridor's entry column.
    PatchArchOptions opts = healthy_opts;
    opts.defects.spec_json = "{\"disabled_links\": [["
        + std::to_string(pa.x) + ", " + std::to_string(pa.y) + ", "
        + std::to_string(pa.x) + ", " + std::to_string(pa.y + 1)
        + "]]}";
    PatchArch arch(circuit::interactionGraph(c), opts);
    ASSERT_GT(arch.defects().numDisabledLinks(), 0);
    ASSERT_EQ(arch.patchOf(qa), pa) << "damage moved the layout";

    network::Path healthy_route = healthy.corridorRoute(
        healthy.terminal(qa), healthy.terminal(qb), false);
    ASSERT_FALSE(arch.routeDefectFree(healthy_route))
        << "the broken coupler misses the healthy primary route; "
           "the flip has nothing to prove";
    network::Path p =
        arch.corridorRoute(arch.terminal(qa), arch.terminal(qb),
                           false);
    EXPECT_TRUE(arch.routeDefectFree(p))
        << "corridor route crosses the disabled coupler";
    EXPECT_EQ(p.source(), arch.terminal(qa));
    EXPECT_EQ(p.dest(), arch.terminal(qb));
}

TEST(Scheduler, DamagedFabricStillSchedulesEveryGate)
{
    circuit::Circuit c("probe", 6);
    for (int32_t q = 0; q + 1 < 6; ++q)
        c.addGate(circuit::GateKind::CNOT, q, q + 1);
    SurgeryOptions opts = naiveOptions();
    opts.defects.density = 0.15;
    opts.defects.seed = 11;
    SurgeryResult r = scheduleSurgery(c, opts);
    EXPECT_GT(r.schedule_cycles, 0u);
    EXPECT_GT(r.defective_nodes + r.defective_links, 0u);
    EXPECT_GT(r.defect_dead_fraction, 0.0);

    // The same workload on the healthy fabric is never slower.
    SurgeryResult healthy = scheduleSurgery(c, naiveOptions());
    EXPECT_GE(r.schedule_cycles, healthy.schedule_cycles);
}

TEST(Scheduler, RejectsBadInput)
{
    circuit::Circuit empty("empty", 2);
    EXPECT_THROW(scheduleSurgery(empty, {}), FatalError);

    circuit::Circuit c = endToEndCnot(4);
    SurgeryOptions opts;
    opts.code_distance = 0;
    EXPECT_THROW(scheduleSurgery(c, opts), FatalError);
    opts = {};
    opts.rounds_per_hop = 0;
    EXPECT_THROW(scheduleSurgery(c, opts), FatalError);
}

} // namespace
} // namespace qsurf::surgery
