/**
 * @file
 * Lattice-surgery simulator tests: corridor-route construction, the
 * chain-claiming mesh semantics (contention serialization on a
 * shared corridor), agreement with the analytic Section 8.2 model's
 * latency trends (monotone in chain length and code distance), the
 * engine integration, and — the engine's central guarantee — sweep
 * results bit-identical at thread counts 1, 2 and 8.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/interaction.h"
#include "common/logging.h"
#include "engine/sim.h"
#include "engine/sweep.h"
#include "estimate/lattice_surgery.h"
#include "surgery/backend.h"
#include "surgery/chain_scheduler.h"
#include "toolflow/toolflow.h"

namespace qsurf::surgery {
namespace {

/** A chain machine with one CNOT between the end qubits. */
circuit::Circuit
endToEndCnot(int num_qubits)
{
    circuit::Circuit c("dist-probe", num_qubits);
    c.addGate(circuit::GateKind::CNOT, 0,
              static_cast<int32_t>(num_qubits - 1));
    return c;
}

/** A 2x2 patch machine (4 qubits, naive layout). */
PatchArch
fourQubitArch()
{
    circuit::Circuit c("probe", 4);
    c.addGate(circuit::GateKind::CNOT, 0, 3);
    PatchArchOptions opts;
    opts.optimized_layout = false;
    return PatchArch(circuit::interactionGraph(c), opts);
}

SurgeryOptions
naiveOptions(int d = 5)
{
    SurgeryOptions opts;
    opts.code_distance = d;
    opts.optimized_layout = false;
    return opts;
}

TEST(PatchArch, CorridorRoutesAvoidOtherPatches)
{
    PatchArch arch = fourQubitArch();
    for (bool yx : {false, true}) {
        network::Path p =
            arch.corridorRoute(arch.terminal(0), arch.terminal(3), yx);
        EXPECT_EQ(p.source(), arch.terminal(0));
        EXPECT_EQ(p.dest(), arch.terminal(3));
        for (size_t i = 1; i + 1 < p.nodes.size(); ++i) {
            const Coord &c = p.nodes[i];
            EXPECT_TRUE(c.x % 2 == 0 || c.y % 2 == 0)
                << "interior corridor node " << c
                << " is a patch center";
        }
        // Consecutive nodes are mesh-adjacent.
        for (size_t i = 1; i < p.nodes.size(); ++i)
            EXPECT_EQ(manhattan(p.nodes[i - 1], p.nodes[i]), 1);
    }
}

TEST(PatchArch, AdjacentPatchesMergeDirectly)
{
    PatchArch arch = fourQubitArch();
    network::Path p =
        arch.corridorRoute(arch.terminal(0), arch.terminal(1), false);
    EXPECT_EQ(p.hops(), 2);
    EXPECT_EQ(PatchArch::chainTiles(p.hops()), 1);
}

TEST(PatchArch, ChainTilesRoundsUp)
{
    EXPECT_EQ(PatchArch::chainTiles(2), 1);
    EXPECT_EQ(PatchArch::chainTiles(3), 2);
    EXPECT_EQ(PatchArch::chainTiles(4), 2);
    EXPECT_EQ(PatchArch::chainTiles(7), 4);
}

TEST(ChainClaimer, ContendingChainsSerializeOnSharedCorridor)
{
    PatchArch arch = fourQubitArch();
    network::Mesh mesh = arch.makeMesh();
    engine::RouteClaimOptions copts;
    engine::ChainClaimer claimer(mesh, copts);
    for (const Coord &t : arch.reservedTerminals())
        claimer.reserveTerminal(t);

    // Diagonal chain 0 -> 3 claims the central corridor.
    auto first = claimer.tryClaim(
        arch.corridorRoute(arch.terminal(0), arch.terminal(3), false),
        arch.corridorRoute(arch.terminal(0), arch.terminal(3), true),
        /*owner=*/0, /*wait=*/0);
    ASSERT_TRUE(first.has_value());

    // The crossing chain 1 -> 2 shares that corridor: both preferred
    // geometries conflict, so placement must fail until the first
    // chain releases (the braid-style congestion of Section 8.2).
    network::Path primary =
        arch.corridorRoute(arch.terminal(1), arch.terminal(2), false);
    network::Path fallback =
        arch.corridorRoute(arch.terminal(1), arch.terminal(2), true);
    EXPECT_FALSE(
        claimer.tryClaim(primary, fallback, 1, copts.adapt_timeout)
            .has_value());

    claimer.release(*first, 0);
    auto second = claimer.tryClaim(primary, fallback, 1, 0);
    EXPECT_TRUE(second.has_value());
}

TEST(ChainClaimer, ReleaseRestoresPatchReservations)
{
    PatchArch arch = fourQubitArch();
    network::Mesh mesh = arch.makeMesh();
    engine::RouteClaimOptions copts;
    engine::ChainClaimer claimer(mesh, copts);
    for (const Coord &t : arch.reservedTerminals())
        claimer.reserveTerminal(t);

    Coord t0 = arch.terminal(0), t3 = arch.terminal(3);
    EXPECT_NE(mesh.nodeOwner(t0), network::Mesh::no_owner);
    auto chain = claimer.tryClaim(arch.corridorRoute(t0, t3, false),
                                  arch.corridorRoute(t0, t3, true),
                                  7, 0);
    ASSERT_TRUE(chain.has_value());
    EXPECT_EQ(mesh.nodeOwner(t0), 7);
    claimer.release(*chain, 7);
    // The patch terminals are reserved again, the corridor is free.
    EXPECT_NE(mesh.nodeOwner(t0), network::Mesh::no_owner);
    EXPECT_NE(mesh.nodeOwner(t0), 7);
    for (size_t i = 1; i + 1 < chain->nodes.size(); ++i)
        EXPECT_EQ(mesh.nodeOwner(chain->nodes[i]),
                  network::Mesh::no_owner);
}

TEST(Scheduler, SharedCorridorCostsMoreThanDisjointMerges)
{
    // Naive 2x2 layout: (0,1) and (2,3) merge through disjoint
    // boundary routers and may run concurrently; (0,3) and (1,2)
    // cross in the central corridor and must serialize or detour.
    circuit::Circuit disjoint("disjoint", 4);
    disjoint.addGate(circuit::GateKind::CNOT, 0, 1);
    disjoint.addGate(circuit::GateKind::CNOT, 2, 3);

    circuit::Circuit crossing("crossing", 4);
    crossing.addGate(circuit::GateKind::CNOT, 0, 3);
    crossing.addGate(circuit::GateKind::CNOT, 1, 2);

    SurgeryResult r_disjoint =
        scheduleSurgery(disjoint, naiveOptions());
    SurgeryResult r_crossing =
        scheduleSurgery(crossing, naiveOptions());
    EXPECT_GT(r_crossing.schedule_cycles,
              r_disjoint.schedule_cycles);
    EXPECT_GT(r_crossing.placement_failures, 0u);
}

TEST(Scheduler, ChainCostMonotoneInDistanceLikeTheModel)
{
    // The analytic model (Section 8.2) charges rounds_per_hop * d
    // cycles per chain tile; the simulated chain must grow the same
    // way as d rises on a fixed machine.
    circuit::Circuit c = endToEndCnot(16);
    uint64_t prev = 0;
    for (int d : {3, 5, 9}) {
        SurgeryResult r = scheduleSurgery(c, naiveOptions(d));
        EXPECT_GT(r.schedule_cycles, prev)
            << "schedule must grow with code distance d=" << d;
        prev = r.schedule_cycles;
    }
}

TEST(Scheduler, ChainCostMonotoneInHopsLikeTheModel)
{
    // ... and with chain length (machine size) at fixed d, like the
    // model's rounds_per_hop * d * route_len term.
    uint64_t prev = 0;
    for (int n : {4, 16, 64}) {
        SurgeryResult r =
            scheduleSurgery(endToEndCnot(n), naiveOptions());
        EXPECT_GT(r.schedule_cycles, prev)
            << "schedule must grow with separation, n=" << n;
        prev = r.schedule_cycles;
    }
    // The analytic estimate shows the same trend over machine size.
    qec::Technology tech;
    tech.p_physical = 1e-8;
    estimate::ResourceModel model(apps::AppKind::SQ, tech);
    EXPECT_GT(estimate::estimateSurgery(model, 1e12).step_cycles,
              estimate::estimateSurgery(model, 1e4).step_cycles);
}

TEST(Scheduler, ScheduleIsBoundedBelowByCriticalPath)
{
    for (int n : {4, 9, 25}) {
        circuit::Circuit c = endToEndCnot(n);
        SurgeryOptions opts = naiveOptions();
        SurgeryResult r = scheduleSurgery(c, opts);
        EXPECT_GE(r.schedule_cycles, r.critical_path_cycles);
        EXPECT_GT(r.critical_path_cycles, 0u);
        EXPECT_EQ(r.chains_placed, 1u);
        EXPECT_GE(r.max_chain_tiles, 1u);
    }
}

TEST(Backend, RegistryHasSurgeryBackends)
{
    engine::Registry &r = engine::Registry::global();
    EXPECT_TRUE(r.contains("planar/surgery-sim"));
    EXPECT_TRUE(r.contains("planar/surgery-model"));
    EXPECT_TRUE(r.contains(engine::backends::surgery_sim));
    EXPECT_TRUE(r.contains(engine::backends::surgery_model));
}

TEST(Backend, SimMatchesDirectSimulation)
{
    apps::GenOptions gen;
    gen.problem_size = 8;
    gen.max_iterations = 2;
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, gen));

    engine::WorkItem item;
    item.circuit = &circ;
    item.config.code_distance = 5;
    item.config.seed = 7;

    SurgeryOptions opts;
    opts.code_distance = 5;
    opts.seed = 7;
    SurgeryResult direct = scheduleSurgery(circ, opts);

    const engine::Backend &b =
        engine::Registry::global().get(engine::backends::surgery_sim);
    engine::Metrics m = b.run(item);
    EXPECT_EQ(m.schedule_cycles, direct.schedule_cycles);
    EXPECT_EQ(m.critical_path_cycles, direct.critical_path_cycles);
    EXPECT_DOUBLE_EQ(m.extra("mesh_utilization"),
                     direct.mesh_utilization);
    EXPECT_EQ(m.code, qec::CodeKind::Planar);
    EXPECT_DOUBLE_EQ(
        m.physical_qubits,
        surgeryPhysicalQubits(
            static_cast<double>(circ.numQubits()), 5));
}

TEST(Backend, ModelMatchesDirectEstimate)
{
    engine::WorkItem item;
    item.app = apps::AppKind::SQ;
    item.config.kq = 1e8;
    item.config.tech = qec::tech_points::futureOptimistic();

    estimate::ResourceModel model(apps::AppKind::SQ,
                                  item.config.tech);
    estimate::ResourceEstimate direct =
        estimate::estimateSurgery(model, 1e8);

    const engine::Backend &b = engine::Registry::global().get(
        engine::backends::surgery_model);
    EXPECT_FALSE(b.needsCircuit());
    engine::Metrics m = b.run(item);
    EXPECT_EQ(m.code_distance, direct.code_distance);
    EXPECT_DOUBLE_EQ(m.physical_qubits, direct.physical_qubits);
    EXPECT_DOUBLE_EQ(m.seconds, direct.seconds);
}

TEST(Backend, ToolflowDrivesSurgeryViaRegistry)
{
    apps::GenOptions gen;
    gen.problem_size = 8;
    gen.max_iterations = 2;
    circuit::Circuit circ =
        apps::generate(apps::AppKind::SQ, gen);

    toolflow::Config config;
    config.backends = {engine::backends::planar,
                       engine::backends::surgery_sim};
    toolflow::Report report = toolflow::run(circ, config);
    ASSERT_EQ(report.backend_metrics.size(), 2u);
    EXPECT_EQ(report.backend_metrics[1].backend,
              engine::backends::surgery_sim);
    EXPECT_GT(report.backend_metrics[1].schedule_cycles, 0u);
    // Surgery cannot beat the planar machine it shares a footprint
    // with: same patches, but chains instead of prefetched EPRs.
    EXPECT_GE(report.backend_metrics[1].schedule_cycles,
              report.backend_metrics[0].schedule_cycles);
}

bool
identical(const engine::Metrics &a, const engine::Metrics &b)
{
    // Exact comparison on purpose: determinism means bit-identical
    // doubles, not approximately-equal ones.
    return a.backend == b.backend && a.code == b.code
        && a.code_distance == b.code_distance
        && a.schedule_cycles == b.schedule_cycles
        && a.critical_path_cycles == b.critical_path_cycles
        && a.physical_qubits == b.physical_qubits
        && a.seconds == b.seconds && a.extras == b.extras;
}

TEST(Sweep, SurgeryDeterministicAcrossThreadCounts)
{
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::SHA1, {8, 1}, ""}};
    grid.backends = {engine::backends::surgery_sim};
    grid.distances = {3, 5};
    grid.base.seed = 1234;

    engine::SweepOptions opts1, opts2, opts8;
    opts1.num_threads = 1;
    opts2.num_threads = 2;
    opts8.num_threads = 8;

    engine::SweepDriver driver;
    auto r1 = driver.run(grid, opts1);
    auto r2 = driver.run(grid, opts2);
    auto r8 = driver.run(grid, opts8);

    ASSERT_EQ(r1.size(), 4u);
    ASSERT_EQ(r1.size(), r2.size());
    ASSERT_EQ(r1.size(), r8.size());
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_TRUE(identical(r1[i].metrics, r2[i].metrics))
            << "1-thread vs 2-thread mismatch at point " << i;
        EXPECT_TRUE(identical(r1[i].metrics, r8[i].metrics))
            << "1-thread vs 8-thread mismatch at point " << i;
    }
}

TEST(Scheduler, RejectsBadInput)
{
    circuit::Circuit empty("empty", 2);
    EXPECT_THROW(scheduleSurgery(empty, {}), FatalError);

    circuit::Circuit c = endToEndCnot(4);
    SurgeryOptions opts;
    opts.code_distance = 0;
    EXPECT_THROW(scheduleSurgery(c, opts), FatalError);
    opts = {};
    opts.rounds_per_hop = 0;
    EXPECT_THROW(scheduleSurgery(c, opts), FatalError);
}

} // namespace
} // namespace qsurf::surgery
