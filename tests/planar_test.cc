/**
 * @file
 * Planar backend tests: Multi-SIMD geometry, SIMD schedule
 * invariants, EPR pipelining (window tradeoffs of Section 8.1) and
 * the combined runPlanar path.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "circuit/dag.h"
#include "circuit/decompose.h"
#include "circuit/schedule.h"
#include "common/logging.h"
#include "planar/planar.h"

namespace qsurf::planar {
namespace {

using circuit::Circuit;
using circuit::GateKind;

Circuit
workload()
{
    apps::GenOptions opts;
    opts.problem_size = 20;
    opts.max_iterations = 2;
    return circuit::decompose(
        apps::generate(apps::AppKind::IsingFull, opts));
}

SimdArch
archFor(const Circuit &c, int regions = 4)
{
    SimdArchOptions opts;
    opts.num_regions = regions;
    opts.num_qubits = c.numQubits();
    return SimdArch(opts);
}

TEST(SimdArch, DistancesAreMetric)
{
    SimdArchOptions opts;
    opts.num_regions = 4;
    opts.num_qubits = 64;
    SimdArch arch(opts);
    EXPECT_EQ(arch.numRegions(), 4);
    for (int a = 0; a < 4; ++a) {
        EXPECT_EQ(arch.regionDistance(a, a), 0);
        for (int b = 0; b < 4; ++b)
            EXPECT_EQ(arch.regionDistance(a, b),
                      arch.regionDistance(b, a));
    }
    EXPECT_GT(arch.channelLinks(), 0);
}

TEST(SimdArch, EprDistanceCoversBothLegs)
{
    SimdArchOptions opts;
    opts.num_regions = 4;
    opts.num_qubits = 64;
    SimdArch arch(opts);
    for (int a = 0; a < 4; ++a)
        for (int b = 0; b < 4; ++b)
            EXPECT_GE(arch.eprDistance(a, b),
                      std::max(arch.factoryDistance(a),
                               arch.factoryDistance(b)));
}

TEST(SimdArch, RejectsBadConfig)
{
    SimdArchOptions opts;
    opts.num_regions = 0;
    EXPECT_THROW(SimdArch{opts}, qsurf::FatalError);
}

TEST(SimdSchedule, StepsCoverDepth)
{
    Circuit c = workload();
    SimdArch arch = archFor(c);
    SimdSchedule sched = scheduleSimd(c, arch);

    circuit::Dag dag(c);
    int depth = circuit::levelize(dag).depth;
    EXPECT_GE(sched.steps, depth)
        << "region/kind serialization can only add steps";
    // All gates accounted for.
    uint64_t total = 0;
    for (int g : sched.gates_per_step)
        total += static_cast<uint64_t>(g);
    EXPECT_EQ(total, static_cast<uint64_t>(c.size()));
}

TEST(SimdSchedule, TeleportsAreStepOrderedAndValid)
{
    Circuit c = workload();
    SimdArch arch = archFor(c);
    SimdSchedule sched = scheduleSimd(c, arch);
    int prev = 0;
    for (const TeleportEvent &e : sched.teleports) {
        EXPECT_GE(e.step, prev);
        prev = e.step;
        EXPECT_NE(e.src_region, e.dst_region);
        EXPECT_GE(e.qubit, 0);
        EXPECT_LT(e.qubit, c.numQubits());
    }
}

TEST(SimdSchedule, SingleRegionNeedsNoTeleports)
{
    Circuit c = workload();
    SimdArch arch = archFor(c, 1);
    SimdSchedule sched = scheduleSimd(c, arch);
    EXPECT_TRUE(sched.teleports.empty());
}

TEST(SimdSchedule, LocalityBoundsTeleportRate)
{
    Circuit c = workload();
    SimdSchedule sched = scheduleSimd(c, archFor(c));
    // Worst case is 2 moves/gate; locality should do far better.
    EXPECT_LT(sched.teleportRate(), 1.0);
}

TEST(Epr, NoTeleportsMeansNoStalls)
{
    Circuit c = workload();
    SimdArch arch = archFor(c, 1);
    SimdSchedule sched = scheduleSimd(c, arch);
    EprResult r = simulateEpr(sched, arch);
    EXPECT_EQ(r.stall_cycles, 0u);
    EXPECT_EQ(r.peak_live_eprs, 0u);
    EXPECT_EQ(r.schedule_cycles, r.nominal_cycles);
}

TEST(Epr, PrefetchAllMaximizesFootprint)
{
    // SHA-1 moves words between regions throughout the run, giving
    // a teleport stream spread over time (IM's chain locality
    // settles after the first step and would make windows moot).
    apps::GenOptions gopts;
    gopts.problem_size = 8;
    gopts.max_iterations = 4;
    Circuit c = circuit::decompose(
        apps::generate(apps::AppKind::SHA1, gopts));
    SimdArch arch = archFor(c);
    SimdSchedule sched = scheduleSimd(c, arch);
    ASSERT_FALSE(sched.teleports.empty());

    EprOptions jit;
    jit.window_steps = 4;
    EprOptions all;
    all.window_steps = 0; // prefetch everything at cycle 0.
    EprResult r_jit = simulateEpr(sched, arch, jit);
    EprResult r_all = simulateEpr(sched, arch, all);

    // Section 8.1: just-in-time distribution saves qubits (the
    // time-averaged footprint shrinks sharply; the peak can only
    // shrink or stay)...
    EXPECT_LE(r_jit.peak_live_eprs, r_all.peak_live_eprs);
    EXPECT_LT(r_jit.avg_live_eprs, r_all.avg_live_eprs);
    // ...at a modest latency cost.
    EXPECT_LE(r_jit.schedule_cycles, r_all.schedule_cycles * 3);
}

TEST(Epr, TinyWindowStallsMore)
{
    Circuit c = workload();
    SimdArch arch = archFor(c);
    SimdSchedule sched = scheduleSimd(c, arch);
    ASSERT_FALSE(sched.teleports.empty());

    EprOptions tiny;
    tiny.window_steps = 1;
    tiny.bandwidth = 2;
    EprOptions wide;
    wide.window_steps = 64;
    wide.bandwidth = 2;
    EprResult r_tiny = simulateEpr(sched, arch, tiny);
    EprResult r_wide = simulateEpr(sched, arch, wide);
    EXPECT_GE(r_tiny.stall_cycles, r_wide.stall_cycles)
        << "starved windows must stall at least as much";
}

TEST(Epr, LiveEprAccountingConsistent)
{
    Circuit c = workload();
    SimdArch arch = archFor(c);
    SimdSchedule sched = scheduleSimd(c, arch);
    EprResult r = simulateEpr(sched, arch);
    EXPECT_EQ(r.teleports, sched.teleports.size());
    EXPECT_GE(r.peak_live_eprs, 1u);
    EXPECT_LE(r.avg_live_eprs,
              static_cast<double>(r.peak_live_eprs));
}

TEST(RunPlanar, EndToEndInvariants)
{
    Circuit c = workload();
    PlanarOptions opts;
    opts.code_distance = 3;
    PlanarResult r = runPlanar(c, opts);
    EXPECT_GE(r.schedule_cycles, r.critical_path_cycles);
    EXPECT_GT(r.steps, 0);
    EXPECT_GE(r.ratio(), 1.0);
    EXPECT_GT(r.teleports, 0u);
}

TEST(RunPlanar, RejectsEmpty)
{
    Circuit c(2);
    EXPECT_THROW(runPlanar(c), qsurf::FatalError);
}

} // namespace
} // namespace qsurf::planar
