/**
 * @file
 * Fabric defect-map tests: the seeded generator (deterministic,
 * density-scaling), explicit JSON device specs, the query surface
 * the architectures route and price with (dead tiles, disabled
 * links, error-rate regions, O(1) route exposure), and materialize()
 * precedence.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/logging.h"
#include "fabric/defect.h"

namespace qsurf::fabric {
namespace {

TEST(DefectMap, EmptyByDefault)
{
    DefectMap m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.numDeadTiles(), 0);
    EXPECT_EQ(m.numDisabledLinks(), 0);
    EXPECT_FALSE(m.deadTile(0, 0));
    EXPECT_FALSE(m.linkDisabled({0, 0}, {1, 0}));
    EXPECT_DOUBLE_EQ(m.errorMultiplierAt(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m.avgErrorMultiplier(), 1.0);
    EXPECT_DOUBLE_EQ(m.routeExposure({0, 0}, {5, 5}), 0.0);
}

TEST(DefectMap, GeneratorIsDeterministicPerSeed)
{
    DefectMap a = DefectMap::generate(12, 12, 0.1, 42);
    DefectMap b = DefectMap::generate(12, 12, 0.1, 42);
    EXPECT_EQ(a.deadTiles(), b.deadTiles());
    EXPECT_EQ(a.disabledLinks(), b.disabledLinks());
    EXPECT_DOUBLE_EQ(a.avgErrorMultiplier(), b.avgErrorMultiplier());

    DefectMap c = DefectMap::generate(12, 12, 0.1, 43);
    EXPECT_NE(a.deadTiles(), c.deadTiles())
        << "different seeds should damage different tiles";
}

TEST(DefectMap, DamageScalesWithDensity)
{
    DefectMap lo = DefectMap::generate(20, 20, 0.02, 7);
    DefectMap hi = DefectMap::generate(20, 20, 0.2, 7);
    EXPECT_LT(lo.numDeadTiles(), hi.numDeadTiles());
    EXPECT_GT(hi.deadFraction(), 0.1);
    EXPECT_LT(hi.deadFraction(), 0.4);
    // The hot region's multiplier grows with density too.
    EXPECT_GT(hi.avgErrorMultiplier(), lo.avgErrorMultiplier());
    EXPECT_GE(lo.avgErrorMultiplier(), 1.0);
}

TEST(DefectMap, RejectsBadDensity)
{
    EXPECT_THROW(DefectMap::generate(4, 4, -0.1, 1),
                 qsurf::FatalError);
    EXPECT_THROW(DefectMap::generate(4, 4, 1.0, 1),
                 qsurf::FatalError);
}

TEST(DefectMap, SpecDrivesEveryQuery)
{
    const char *spec = R"({
        "dead_tiles": [[1, 1], [2, 3]],
        "disabled_links": [[0, 0, 1, 0], [2, 2, 2, 3]],
        "regions": [{"x0": 0, "y0": 0, "x1": 1, "y1": 1,
                     "multiplier": 3.0}]
    })";
    DefectMap m = DefectMap::fromSpec(spec, 4, 4);
    EXPECT_EQ(m.numDeadTiles(), 2);
    EXPECT_TRUE(m.deadTile(1, 1));
    EXPECT_TRUE(m.deadTile(2, 3));
    EXPECT_FALSE(m.deadTile(0, 0));
    EXPECT_EQ(m.numDisabledLinks(), 2);
    EXPECT_TRUE(m.linkDisabled({0, 0}, {1, 0}));
    EXPECT_TRUE(m.linkDisabled({1, 0}, {0, 0}))
        << "links are undirected";
    EXPECT_TRUE(m.linkDisabled({2, 2}, {2, 3}));
    EXPECT_FALSE(m.linkDisabled({1, 1}, {2, 1}));
    EXPECT_DOUBLE_EQ(m.errorMultiplierAt(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(m.errorMultiplierAt(2, 2), 1.0);
    EXPECT_GT(m.avgErrorMultiplier(), 1.0);
}

TEST(DefectMap, SpecOutOfBoundsEntriesAreIgnored)
{
    DefectMap m = DefectMap::fromSpec(
        "{\"dead_tiles\": [[9, 9]], "
        "\"disabled_links\": [[8, 0, 9, 0]]}",
        3, 3);
    EXPECT_EQ(m.numDeadTiles(), 0);
    EXPECT_EQ(m.numDisabledLinks(), 0);
}

TEST(DefectMap, MalformedSpecIsFatal)
{
    EXPECT_THROW(DefectMap::fromSpec("[]", 3, 3), qsurf::FatalError);
    EXPECT_THROW(DefectMap::fromSpec("{\"dead_tiles\": [[1]]}", 3, 3),
                 qsurf::FatalError);
    EXPECT_THROW(
        DefectMap::fromSpec(
            "{\"disabled_links\": [[0, 0, 2, 0]]}", 3, 3),
        qsurf::FatalError)
        << "non-adjacent link endpoints must be rejected";
}

TEST(DefectMap, RouteExposureMatchesBruteForce)
{
    DefectMap m = DefectMap::generate(10, 8, 0.15, 5);
    ASSERT_GT(m.numDeadTiles(), 0);
    const std::vector<std::pair<Coord, Coord>> spans = {
        {{0, 0}, {9, 7}},
        {{3, 2}, {6, 5}},
        {{7, 1}, {2, 6}},
        {{4, 4}, {4, 4}},
    };
    for (const auto &[a, b] : spans) {
        int dead = 0, area = 0;
        for (int y = std::min(a.y, b.y); y <= std::max(a.y, b.y);
             ++y)
            for (int x = std::min(a.x, b.x); x <= std::max(a.x, b.x);
                 ++x) {
                ++area;
                dead += m.deadTile(x, y);
            }
        EXPECT_DOUBLE_EQ(m.routeExposure(a, b),
                         static_cast<double>(dead) / area)
            << "bounding box " << a << " .. " << b;
    }
}

TEST(DefectMap, MaterializePrecedence)
{
    DefectParams p;
    EXPECT_FALSE(p.enabled());
    EXPECT_TRUE(DefectMap::materialize(p, 6, 6).empty());

    p.density = 0.2;
    p.seed = 9;
    EXPECT_TRUE(p.enabled());
    DefectMap generated = DefectMap::materialize(p, 6, 6);
    EXPECT_EQ(generated.deadTiles(),
              DefectMap::generate(6, 6, 0.2, 9).deadTiles());

    // An explicit spec wins over the generator.
    p.spec_json = "{\"dead_tiles\": [[5, 5]]}";
    DefectMap spec = DefectMap::materialize(p, 6, 6);
    EXPECT_EQ(spec.numDeadTiles(), 1);
    EXPECT_TRUE(spec.deadTile(5, 5));
}

} // namespace
} // namespace qsurf::fabric
