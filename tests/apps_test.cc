/**
 * @file
 * Application-generator tests: structural validity, determinism, and
 * the Table-2 parallelism bands each workload must land in.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "circuit/schedule.h"
#include "common/logging.h"

namespace qsurf::apps {
namespace {

TEST(Apps, RegistryCoversAllKinds)
{
    EXPECT_EQ(allApps().size(), 5u);
    for (AppKind kind : allApps()) {
        const AppSpec &spec = appSpec(kind);
        EXPECT_EQ(spec.kind, kind);
        EXPECT_FALSE(spec.name.empty());
        EXPECT_FALSE(spec.purpose.empty());
        EXPECT_GT(spec.paper_parallelism, 1.0);
    }
}

TEST(Apps, GeneratorsAreDeterministic)
{
    for (AppKind kind : allApps()) {
        GenOptions opts;
        opts.problem_size = 8;
        opts.max_iterations = 2;
        auto a = generate(kind, opts);
        auto b = generate(kind, opts);
        ASSERT_EQ(a.size(), b.size());
        for (int i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a.gate(i).kind, b.gate(i).kind);
            EXPECT_EQ(a.gate(i).qubit, b.gate(i).qubit);
        }
    }
}

TEST(Apps, ProblemSizeGrowsCircuit)
{
    for (AppKind kind : allApps()) {
        GenOptions small, large;
        small.problem_size = 6;
        small.max_iterations = 2;
        large.problem_size = 16;
        large.max_iterations = 2;
        EXPECT_LT(generate(kind, small).size(),
                  generate(kind, large).size())
            << appSpec(kind).name;
    }
}

TEST(Apps, RejectsDegenerateSize)
{
    GenOptions opts;
    opts.problem_size = 1;
    EXPECT_THROW(generate(AppKind::GSE, opts), qsurf::FatalError);
}

TEST(Apps, EveryAppMeasuresItsOutput)
{
    for (AppKind kind : allApps()) {
        GenOptions opts;
        opts.problem_size = 8;
        opts.max_iterations = 2;
        auto c = generate(kind, opts);
        EXPECT_GT(c.counts().measurements, 0u)
            << appSpec(kind).name;
    }
}

/**
 * Table 2 parallelism bands at the default sizes.  The generated
 * workloads are synthetic stand-ins, so the assertion is a band
 * around the paper's value rather than an exact match.
 */
struct Band
{
    AppKind kind;
    double lo;
    double hi;
};

class ParallelismBand : public ::testing::TestWithParam<Band>
{
};

TEST_P(ParallelismBand, DefaultSizeLandsInPaperBand)
{
    const Band &band = GetParam();
    auto circ = generate(band.kind, defaultOptions(band.kind));
    auto profile = circuit::parallelismProfile(circ);
    EXPECT_GE(profile.factor, band.lo)
        << appSpec(band.kind).name << " factor " << profile.factor;
    EXPECT_LE(profile.factor, band.hi)
        << appSpec(band.kind).name << " factor " << profile.factor;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, ParallelismBand,
    ::testing::Values(Band{AppKind::GSE, 1.0, 1.7},
                      Band{AppKind::SQ, 1.1, 2.6},
                      Band{AppKind::SHA1, 15.0, 45.0},
                      Band{AppKind::IsingSemi, 30.0, 90.0},
                      Band{AppKind::IsingFull, 40.0, 100.0}),
    [](const auto &info) {
        return appSpec(info.param.kind).name == "IM-semi"
            ? std::string("IMsemi")
            : appSpec(info.param.kind).name == "IM-full"
                ? std::string("IMfull")
                : appSpec(info.param.kind).name == "SHA-1"
                    ? std::string("SHA1")
                    : appSpec(info.param.kind).name;
    });

TEST(Apps, SerialVsParallelClassesSeparate)
{
    auto serial_factor = [](AppKind k) {
        return circuit::parallelismProfile(
                   generate(k, defaultOptions(k)))
            .factor;
    };
    double gse = serial_factor(AppKind::GSE);
    double sq = serial_factor(AppKind::SQ);
    double sha = serial_factor(AppKind::SHA1);
    double im = serial_factor(AppKind::IsingSemi);
    EXPECT_LT(gse, 5.0);
    EXPECT_LT(sq, 5.0);
    EXPECT_GT(sha, 10.0);
    EXPECT_GT(im, 10.0);
}

TEST(Apps, FullInliningRaisesMeasuredParallelism)
{
    GenOptions opts;
    opts.problem_size = 60;
    opts.max_iterations = 5;
    double semi = circuit::parallelismProfile(
                      generate(AppKind::IsingSemi, opts))
                      .factor;
    double full = circuit::parallelismProfile(
                      generate(AppKind::IsingFull, opts))
                      .factor;
    EXPECT_GT(full, semi)
        << "inlining the ZZ modules must expose more parallelism";
}

TEST(Apps, SampleQasmIsNonTrivial)
{
    std::string src = sampleHierarchicalQasm();
    EXPECT_NE(src.find("module"), std::string::npos);
    EXPECT_NE(src.find("MeasZ"), std::string::npos);
}

} // namespace
} // namespace qsurf::apps
