/**
 * @file
 * Bisection tests: balance invariants, cut quality on graphs with a
 * known optimal cut, determinism, disconnected inputs, and a
 * parameterized sweep over sizes and target fractions.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "partition/bisect.h"

namespace qsurf::partition {
namespace {

/** Two k-cliques joined by a single light bridge edge. */
Graph
twoCliques(int k)
{
    Graph g(2 * k);
    for (int side = 0; side < 2; ++side)
        for (int i = 0; i < k; ++i)
            for (int j = i + 1; j < k; ++j)
                g.addEdge(side * k + i, side * k + j, 10);
    g.addEdge(0, k, 1); // the bridge
    return g;
}

TEST(Bisect, FindsTheObviousCut)
{
    Graph g = twoCliques(8);
    qsurf::Rng rng(42);
    Bisection b = bisect(g, rng);
    EXPECT_EQ(b.cut, 1) << "should cut only the bridge";
    // Each clique must land wholly on one side.
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(b.side[static_cast<size_t>(i)], b.side[0]);
    for (int i = 9; i < 16; ++i)
        EXPECT_EQ(b.side[static_cast<size_t>(i)], b.side[8]);
    EXPECT_NE(b.side[0], b.side[8]);
}

TEST(Bisect, SideVectorCoversAllVertices)
{
    Graph g = twoCliques(5);
    qsurf::Rng rng(1);
    Bisection b = bisect(g, rng);
    ASSERT_EQ(b.side.size(), 10u);
    for (int s : b.side)
        EXPECT_TRUE(s == 0 || s == 1);
}

TEST(Bisect, CutMatchesReportedAssignment)
{
    Graph g = twoCliques(6);
    qsurf::Rng rng(3);
    Bisection b = bisect(g, rng);
    EXPECT_EQ(b.cut, cutWeight(g, b.side));
}

TEST(Bisect, DeterministicForSameSeed)
{
    Graph g = twoCliques(7);
    qsurf::Rng r1(99), r2(99);
    Bisection a = bisect(g, r1);
    Bisection b = bisect(g, r2);
    EXPECT_EQ(a.side, b.side);
    EXPECT_EQ(a.cut, b.cut);
}

TEST(Bisect, HandlesTinyGraphs)
{
    qsurf::Rng rng(1);
    Graph g0(0);
    EXPECT_TRUE(bisect(g0, rng).side.empty());
    Graph g1(1);
    Bisection b1 = bisect(g1, rng);
    EXPECT_EQ(b1.side, std::vector<int>{0});
    EXPECT_EQ(b1.cut, 0);
}

TEST(Bisect, HandlesEdgelessGraph)
{
    Graph g(10);
    qsurf::Rng rng(5);
    Bisection b = bisect(g, rng);
    EXPECT_EQ(b.cut, 0);
    // Balance: 10 unit vertices should split near 5/5.
    EXPECT_GE(b.side0_weight, 3);
    EXPECT_LE(b.side0_weight, 7);
}

TEST(Bisect, HandlesDisconnectedComponents)
{
    Graph g(12);
    for (int base : {0, 4, 8})
        for (int i = 0; i < 3; ++i)
            g.addEdge(base + i, base + i + 1, 5);
    qsurf::Rng rng(7);
    Bisection b = bisect(g, rng);
    EXPECT_EQ(b.cut, cutWeight(g, b.side));
    EXPECT_GE(b.side0_weight, 4);
    EXPECT_LE(b.side0_weight, 8);
}

TEST(Bisect, RejectsBadTargetFraction)
{
    Graph g(4);
    qsurf::Rng rng(1);
    BisectOptions opts;
    opts.target_fraction = 0;
    EXPECT_THROW(bisect(g, rng, opts), qsurf::FatalError);
    opts.target_fraction = 1;
    EXPECT_THROW(bisect(g, rng, opts), qsurf::FatalError);
}

/** Parameterized balance sweep: (vertices, target fraction). */
class BisectBalance
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(BisectBalance, RespectsBalanceEnvelope)
{
    auto [n, target] = GetParam();
    // Ring graph: every vertex degree 2.
    Graph g(n);
    for (int i = 0; i < n; ++i)
        g.addEdge(i, (i + 1) % n, 1 + i % 3);
    qsurf::Rng rng(static_cast<uint64_t>(n * 1000 + target * 100));
    BisectOptions opts;
    opts.target_fraction = target;
    Bisection b = bisect(g, rng, opts);

    double want = n * target;
    // Envelope: epsilon share plus one max-weight vertex of slack.
    double slack = std::max(n * opts.imbalance, 1.0) + 1e-9;
    EXPECT_GE(b.side0_weight, want - slack - 1);
    EXPECT_LE(b.side0_weight, want + slack + 1);
    EXPECT_EQ(b.cut, cutWeight(g, b.side));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BisectBalance,
    ::testing::Combine(::testing::Values(8, 33, 64, 120, 257),
                       ::testing::Values(0.25, 0.5, 0.75)));

/** Property: multilevel cut quality beats a naive split on cliques. */
class BisectQuality : public ::testing::TestWithParam<int>
{
};

TEST_P(BisectQuality, CutBridgeOnly)
{
    int k = GetParam();
    Graph g = twoCliques(k);
    qsurf::Rng rng(static_cast<uint64_t>(k));
    Bisection b = bisect(g, rng);
    EXPECT_EQ(b.cut, 1) << "clique pair of size " << k;
}

INSTANTIATE_TEST_SUITE_P(CliqueSizes, BisectQuality,
                         ::testing::Values(4, 8, 16, 32, 64));

} // namespace
} // namespace qsurf::partition
