/**
 * @file
 * Cross-module randomized stress tests: random Clifford+T circuits
 * pushed through the whole stack (peephole -> decompose -> both
 * backends) under every policy, asserting the universal invariants —
 * completion, critical-path bounds, conservation of braid counts,
 * and round-trip stability — hold far from the hand-picked cases.
 */

#include <gtest/gtest.h>

#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "circuit/peephole.h"
#include "common/logging.h"
#include "common/rng.h"
#include "planar/planar.h"
#include "qasm/flatten.h"
#include "qasm/parser.h"
#include "qasm/writer.h"

namespace qsurf {
namespace {

using circuit::Circuit;
using circuit::GateKind;

/** Random circuit over @p nq qubits with a broad gate mix. */
Circuit
randomCircuit(uint64_t seed, int nq, int gates)
{
    Rng rng(seed);
    Circuit c("fuzz", nq);
    for (int i = 0; i < gates; ++i) {
        auto q = static_cast<int32_t>(rng.below(
            static_cast<uint64_t>(nq)));
        auto r = static_cast<int32_t>(
            (q + 1 + rng.below(static_cast<uint64_t>(nq - 1))) % nq);
        switch (rng.below(10)) {
          case 0: c.addGate(GateKind::H, q); break;
          case 1: c.addGate(GateKind::X, q); break;
          case 2: c.addGate(GateKind::S, q); break;
          case 3: c.addGate(GateKind::T, q); break;
          case 4: c.addGate(GateKind::Tdag, q); break;
          case 5: c.addRz(rng.uniform() * 2 - 1, q); break;
          case 6: c.addGate(GateKind::CNOT, q, r); break;
          case 7: c.addGate(GateKind::CZ, q, r); break;
          case 8: c.addGate(GateKind::Swap, q, r); break;
          default: {
            auto s = static_cast<int32_t>(
                (r + 1 + rng.below(static_cast<uint64_t>(nq - 2)))
                % nq);
            if (s == q || s == r)
                c.addGate(GateKind::MeasZ, q);
            else
                c.addGate(GateKind::Toffoli, q, r, s);
            break;
          }
        }
    }
    return c;
}

class FuzzSeed : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzSeed, FullStackHoldsInvariants)
{
    Circuit logical = randomCircuit(GetParam(), 9, 120);

    // Frontend: peephole never grows; decompose removes all
    // non-native gates.
    Circuit opt = circuit::peephole(logical);
    EXPECT_LE(opt.size(), logical.size());
    Circuit ct = circuit::decompose(opt);
    for (const circuit::Gate &g : ct)
        EXPECT_FALSE(circuit::needsDecomposition(g.kind));
    if (ct.empty())
        return; // fully cancelled — nothing to schedule.

    // Round trip through QASM.
    Circuit back = qasm::flatten(
        qasm::parse(qasm::writeString(ct)));
    ASSERT_EQ(back.size(), ct.size());

    // Double-defect backend under two contrasting policies.
    circuit::OpCounts k = ct.counts();
    for (auto policy :
         {braid::Policy::ProgramOrder, braid::Policy::Combined}) {
        braid::BraidOptions opts;
        opts.code_distance = 3;
        braid::BraidResult r = braid::scheduleBraids(ct, policy, opts);
        EXPECT_GE(r.schedule_cycles, r.critical_path_cycles);
        EXPECT_EQ(r.braids_placed, 2 * k.two_qubit + k.t_gates);
        EXPECT_LE(r.mesh_utilization, 1.0);
    }

    // Planar backend.
    planar::PlanarOptions popts;
    popts.code_distance = 3;
    planar::PlanarResult pr = planar::runPlanar(ct, popts);
    EXPECT_GE(pr.schedule_cycles, pr.critical_path_cycles);
}

TEST_P(FuzzSeed, PeepholeIsStableUnderReparse)
{
    Circuit logical = randomCircuit(GetParam() + 1000, 6, 80);
    Circuit once = circuit::peephole(logical);
    if (once.empty())
        return;
    Circuit reparsed = qasm::flatten(
        qasm::parse(qasm::writeString(once)));
    circuit::PeepholeStats stats;
    Circuit twice = circuit::peephole(reparsed, &stats);
    EXPECT_EQ(twice.size(), once.size())
        << "peephole must be a fixpoint across serialization";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace qsurf
