/**
 * @file
 * Tests for Clifford+T decomposition: Toffoli and Swap expansions,
 * Rz sequence structure, and the decomposedSize() = |decompose()|
 * property over randomized circuits.
 */

#include <gtest/gtest.h>

#include "circuit/decompose.h"
#include "common/logging.h"
#include "common/rng.h"

namespace qsurf::circuit {
namespace {

TEST(Decompose, ToffoliBecomesFifteenGates)
{
    Circuit c(3);
    c.addGate(GateKind::Toffoli, 0, 1, 2);
    Circuit d = decompose(c);
    EXPECT_EQ(d.size(), 15);
    OpCounts k = d.counts();
    EXPECT_EQ(k.t_gates, 7u);   // 4 T + 3 Tdag
    EXPECT_EQ(k.two_qubit, 6u); // 6 CNOTs
    EXPECT_EQ(k.three_qubit, 0u);
}

TEST(Decompose, SwapBecomesThreeCnots)
{
    Circuit c(2);
    c.addGate(GateKind::Swap, 0, 1);
    Circuit d = decompose(c);
    EXPECT_EQ(d.size(), 3);
    for (const Gate &g : d)
        EXPECT_EQ(g.kind, GateKind::CNOT);
}

TEST(Decompose, SwapKeptWhenDisabled)
{
    Circuit c(2);
    c.addGate(GateKind::Swap, 0, 1);
    DecomposeConfig cfg;
    cfg.expand_swap = false;
    Circuit d = decompose(c, cfg);
    EXPECT_EQ(d.size(), 1);
    EXPECT_EQ(d.gate(0).kind, GateKind::Swap);
}

TEST(Decompose, RzSequenceLengthAndMix)
{
    Circuit c(1);
    c.addRz(0.3, 0);
    DecomposeConfig cfg;
    cfg.rz_sequence_length = 20;
    cfg.rz_t_fraction = 0.5;
    Circuit d = decompose(c, cfg);
    EXPECT_EQ(d.size(), 20);
    OpCounts k = d.counts();
    EXPECT_EQ(k.t_gates, 10u);
    // All gates stay on the original qubit.
    for (const Gate &g : d)
        EXPECT_EQ(g.qubit[0], 0);
}

TEST(Decompose, NegativeAngleUsesTdag)
{
    Circuit c(1);
    c.addRz(-0.3, 0);
    Circuit d = decompose(c);
    bool has_tdag = false, has_t = false;
    for (const Gate &g : d) {
        has_tdag |= g.kind == GateKind::Tdag;
        has_t |= g.kind == GateKind::T;
    }
    EXPECT_TRUE(has_tdag);
    EXPECT_FALSE(has_t);
}

TEST(Decompose, NativeGatesPassThrough)
{
    Circuit c(2);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::MeasZ, 0);
    Circuit d = decompose(c);
    EXPECT_EQ(d.size(), 3);
    EXPECT_EQ(d.gate(0).kind, GateKind::H);
    EXPECT_EQ(d.gate(1).kind, GateKind::CNOT);
    EXPECT_EQ(d.gate(2).kind, GateKind::MeasZ);
}

TEST(Decompose, ResultContainsNoDecomposableGates)
{
    Circuit c(3);
    c.addGate(GateKind::Toffoli, 0, 1, 2);
    c.addRz(1.0, 0);
    c.addGate(GateKind::Swap, 1, 2);
    Circuit d = decompose(c);
    for (const Gate &g : d)
        EXPECT_FALSE(needsDecomposition(g.kind))
            << gateName(g.kind);
}

TEST(Decompose, RejectsBadConfig)
{
    Circuit c(1);
    c.addRz(1.0, 0);
    DecomposeConfig cfg;
    cfg.rz_sequence_length = 0;
    EXPECT_THROW(decompose(c, cfg), qsurf::FatalError);
}

/** Property: decomposedSize predicts the materialized size exactly. */
class DecomposeSizeProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DecomposeSizeProperty, SizePredictionMatches)
{
    qsurf::Rng rng(GetParam());
    Circuit c(6);
    for (int i = 0; i < 200; ++i) {
        switch (rng.below(6)) {
          case 0:
            c.addGate(GateKind::H, static_cast<int32_t>(rng.below(6)));
            break;
          case 1:
            c.addRz(rng.uniform() - 0.5,
                    static_cast<int32_t>(rng.below(6)));
            break;
          case 2: {
            auto a = static_cast<int32_t>(rng.below(6));
            auto b = static_cast<int32_t>((a + 1 + rng.below(5)) % 6);
            c.addGate(GateKind::CNOT, a, b);
            break;
          }
          case 3: {
            auto a = static_cast<int32_t>(rng.below(6));
            auto b = static_cast<int32_t>((a + 1 + rng.below(5)) % 6);
            c.addGate(GateKind::Swap, a, b);
            break;
          }
          case 4:
            c.addGate(GateKind::Toffoli,
                      static_cast<int32_t>(rng.below(2)),
                      static_cast<int32_t>(2 + rng.below(2)),
                      static_cast<int32_t>(4 + rng.below(2)));
            break;
          default:
            c.addGate(GateKind::T, static_cast<int32_t>(rng.below(6)));
            break;
        }
    }
    DecomposeConfig cfg;
    cfg.rz_sequence_length = 7 + static_cast<int>(GetParam() % 5);
    EXPECT_EQ(decomposedSize(c, cfg),
              static_cast<uint64_t>(decompose(c, cfg).size()));
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, DecomposeSizeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace qsurf::circuit
