/**
 * @file
 * Design-space model tests: these encode the paper's headline shape
 * claims — planar favorable at small computation sizes, double-defect
 * past a crossover (Figure 8), crossover ordering by application
 * parallelism, and boundary behaviour across physical error rates
 * (Figure 9).
 */

#include <gtest/gtest.h>

#include "apps/scaling.h"
#include "common/logging.h"
#include "estimate/crossover.h"
#include "estimate/model.h"

namespace qsurf::estimate {
namespace {

using apps::AppKind;
using qec::CodeKind;

ResourceModel
modelFor(AppKind app, double pp = 1e-8)
{
    qec::Technology tech;
    tech.p_physical = pp;
    return ResourceModel(app, tech);
}

TEST(Scaling, ProblemSizeInvertsOps)
{
    for (AppKind kind : apps::allApps()) {
        apps::AppScaling s(kind);
        for (double n : {8.0, 32.0, 101.0}) {
            double kq = s.opsForProblemSize(n);
            EXPECT_NEAR(s.problemSize(kq), n, n * 0.02)
                << apps::appSpec(kind).name << " at n=" << n;
        }
    }
}

TEST(Scaling, QubitsGrowWithSize)
{
    for (AppKind kind :
         {AppKind::GSE, AppKind::SQ, AppKind::IsingFull}) {
        apps::AppScaling s(kind);
        EXPECT_LT(s.logicalQubits(1e4), s.logicalQubits(1e12))
            << apps::appSpec(kind).name;
    }
}

TEST(Scaling, ParallelismMatchesAppClass)
{
    EXPECT_LT(apps::AppScaling(AppKind::GSE).parallelism(1e8), 2.0);
    EXPECT_LT(apps::AppScaling(AppKind::SQ).parallelism(1e8), 2.0);
    EXPECT_GT(apps::AppScaling(AppKind::SHA1).parallelism(1e8), 10.0);
    EXPECT_GT(apps::AppScaling(AppKind::IsingSemi).parallelism(1e8),
              10.0);
}

TEST(Scaling, FullInliningIsMoreParallel)
{
    for (double kq : {1e6, 1e10, 1e14})
        EXPECT_GT(apps::AppScaling(AppKind::IsingFull).parallelism(kq),
                  apps::AppScaling(AppKind::IsingSemi).parallelism(kq));
}

TEST(Model, EstimatesArePositiveAndConsistent)
{
    ResourceModel m = modelFor(AppKind::SQ);
    for (double kq : {1e3, 1e9, 1e15}) {
        for (CodeKind code :
             {CodeKind::Planar, CodeKind::DoubleDefect}) {
            ResourceEstimate e = m.estimate(code, kq);
            EXPECT_GT(e.physical_qubits, 0);
            EXPECT_GT(e.seconds, 0);
            EXPECT_GE(e.congestion_inflation, 1.0);
            EXPECT_EQ(e.code_distance,
                      qec::CodeModel::chooseDistance(1e-8, kq));
            EXPECT_GT(e.logical_depth, 0);
        }
    }
}

TEST(Model, TimeAndQubitsGrowWithSize)
{
    ResourceModel m = modelFor(AppKind::SQ);
    for (CodeKind code : {CodeKind::Planar, CodeKind::DoubleDefect}) {
        ResourceEstimate small = m.estimate(code, 1e4);
        ResourceEstimate large = m.estimate(code, 1e16);
        EXPECT_GT(large.seconds, small.seconds);
        EXPECT_GT(large.physical_qubits, small.physical_qubits);
    }
}

TEST(Model, DoubleDefectUsesMoreQubits)
{
    // Figure 8: the qubit ratio stays above 1 (planar tiles smaller).
    for (AppKind app : {AppKind::SQ, AppKind::IsingFull}) {
        ResourceModel m = modelFor(app);
        for (double kq : {1e4, 1e10, 1e16})
            EXPECT_GT(m.ratios(kq).qubits, 1.0)
                << apps::appSpec(app).name << " at " << kq;
    }
}

TEST(Model, SmallComputationsFavorPlanar)
{
    // Figure 8: "planar codes are better at smaller sizes".
    for (AppKind app : apps::allApps()) {
        ResourceModel m = modelFor(app);
        EXPECT_GT(m.ratios(100.0).spacetime, 1.0)
            << apps::appSpec(app).name;
    }
}

TEST(Model, FasterMachineRunsFaster)
{
    qec::Technology fast, slow;
    fast.p_physical = slow.p_physical = 1e-6;
    slow.t_two_qubit_ns = 1000;
    ResourceEstimate f = ResourceModel(AppKind::SQ, fast)
                             .estimate(CodeKind::Planar, 1e8);
    ResourceEstimate s = ResourceModel(AppKind::SQ, slow)
                             .estimate(CodeKind::Planar, 1e8);
    EXPECT_LT(f.seconds, s.seconds);
}

TEST(Crossover, ExistsForSerialApps)
{
    // Figure 8a: SQ crosses over to double-defect.
    auto x = crossoverSize(modelFor(AppKind::SQ));
    ASSERT_TRUE(x.has_value()) << "SQ crossover must exist";
    EXPECT_GT(*x, 1e2);
}

TEST(Crossover, ParallelAppsCrossLater)
{
    // Figure 8: "the cross-over point occurs at a much larger
    // computation size for IM, compared to SQ".
    auto sq = crossoverSize(modelFor(AppKind::SQ));
    auto im = crossoverSize(modelFor(AppKind::IsingFull));
    ASSERT_TRUE(sq.has_value());
    if (im.has_value())
        EXPECT_GT(*im, *sq * 100)
            << "IM must cross over decades later than SQ";
}

TEST(Crossover, OrderingFollowsParallelism)
{
    auto gse = crossoverSize(modelFor(AppKind::GSE));
    auto sq = crossoverSize(modelFor(AppKind::SQ));
    auto sha = crossoverSize(modelFor(AppKind::SHA1));
    ASSERT_TRUE(gse.has_value());
    ASSERT_TRUE(sq.has_value());
    // GSE (1.2) and SQ (1.5) are both serial; their crossovers
    // nearly coincide, so allow one decade of slack.
    EXPECT_LE(*gse, *sq * 10);
    if (sha.has_value())
        EXPECT_LT(*sq, *sha)
            << "SHA-1 (parallel) must cross later than SQ (serial)";
}

TEST(Crossover, SemiInlinedCrossesBeforeFullyInlined)
{
    auto semi = crossoverSize(modelFor(AppKind::IsingSemi));
    auto full = crossoverSize(modelFor(AppKind::IsingFull));
    if (semi.has_value() && full.has_value())
        EXPECT_LE(*semi, *full)
            << "more inlining -> more parallelism -> later crossover";
}

TEST(Boundary, ProducesRequestedGrid)
{
    auto pts = favorabilityBoundary(AppKind::SQ, 1e-8, 1e-3, 6);
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_DOUBLE_EQ(pts.front().p_physical, 1e-8);
    EXPECT_NEAR(pts.back().p_physical, 1e-3, 1e-12);
}

TEST(Boundary, RisesTowardFaultierTechnology)
{
    // Figure 9: boundaries move up as pP increases (right on the
    // x-axis) — congestion hurts braids more at larger d.
    for (AppKind app : {AppKind::SQ, AppKind::SHA1}) {
        auto pts = favorabilityBoundary(app, 1e-8, 1e-3, 5);
        double first = 0, last = 0;
        for (const auto &p : pts) {
            if (p.crossover && first == 0)
                first = *p.crossover;
            if (p.crossover)
                last = *p.crossover;
        }
        ASSERT_GT(first, 0.0) << apps::appSpec(app).name;
        EXPECT_GE(last, first) << apps::appSpec(app).name
                               << ": boundary must not fall with pP";
    }
}

TEST(Crossover, RejectsBadSweep)
{
    CrossoverOptions opts;
    opts.kq_min = 10;
    opts.kq_max = 5;
    EXPECT_THROW(crossoverSize(modelFor(AppKind::SQ), opts),
                 qsurf::FatalError);
}

} // namespace
} // namespace qsurf::estimate
