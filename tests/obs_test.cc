/**
 * @file
 * Observability tests: tracing must never change results, the event
 * stream must be execution-mode invariant, and the three sinks must
 * be bit-identical at any sweep thread count.
 *
 *  - Every simulated backend re-run with a recorder attached
 *    produces field-identical metrics (tracing is passive);
 *  - fast-forward and stepped execution emit the same canonical
 *    event stream (modulo the FastForwardSkip events themselves),
 *    including under tight escalation timeouts and factory
 *    starvation — the configurations where the stall-event gate
 *    actually earns its keep;
 *  - a traced sweep writes byte-identical trace/heatmap/metrics
 *    files at 1, 2 and 8 worker threads;
 *  - the heatmap accumulator and the metrics registry keep their
 *    local invariants (bucket sums, percentile ordering, merge
 *    commutativity).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "circuit/circuit.h"
#include "circuit/decompose.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qsurf::obs {
namespace {

TEST(Obs, StallEventGate)
{
    // True exactly at the passes both execution modes run: first
    // attempt and the escalation-threshold crossings.
    EXPECT_TRUE(stallEventGate(0, 8, 16));
    EXPECT_TRUE(stallEventGate(8, 8, 16));
    EXPECT_TRUE(stallEventGate(16, 8, 16));
    EXPECT_FALSE(stallEventGate(1, 8, 16));
    EXPECT_FALSE(stallEventGate(7, 8, 16));
    EXPECT_FALSE(stallEventGate(9, 8, 16));
    EXPECT_FALSE(stallEventGate(15, 8, 16));
    EXPECT_FALSE(stallEventGate(17, 8, 16));
}

TEST(Obs, EventKindNamesAreStableAndDistinct)
{
    std::set<std::string> seen;
    for (int k = 0; k < num_event_kinds; ++k) {
        const char *name =
            eventKindName(static_cast<EventKind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_FALSE(std::string(name).empty());
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate event name " << name;
    }
}

TEST(Obs, DerivedPath)
{
    EXPECT_EQ(derivedPath("trace.json", "heatmap"),
              "trace.heatmap.json");
    EXPECT_EQ(derivedPath("out/t", "heatmap"),
              "out/t.heatmap.json");
}

TEST(Obs, HistogramPercentilesOrderedAndBounded)
{
    MetricsRegistry reg;
    for (int i = 1; i <= 100; ++i)
        reg.observe("h", i);
    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramSummary &h = snap.histograms[0].second;
    EXPECT_EQ(h.count, 100u);
    EXPECT_DOUBLE_EQ(h.sum, 5050.0);
    EXPECT_DOUBLE_EQ(h.min, 1.0);
    EXPECT_DOUBLE_EQ(h.max, 100.0);
    EXPECT_LE(h.p50, h.p95);
    EXPECT_LE(h.p95, h.p99);
    EXPECT_LE(h.p99, h.max);
    // Percentiles are bucket lower bounds: at most one 4-per-octave
    // bucket (ratio 2^0.25 ~ 1.19) below the true rank value.
    EXPECT_LE(h.p50, 50.0);
    EXPECT_GE(h.p50, 50.0 / 1.2);
    EXPECT_LE(h.p95, 95.0);
    EXPECT_GE(h.p95, 95.0 / 1.2);
}

TEST(Obs, RegistryMergeIsCommutative)
{
    MetricsRegistry odd, even, all;
    for (int i = 1; i <= 200; ++i) {
        MetricsRegistry &half = (i % 2) ? odd : even;
        half.observe("h", i * 0.37);
        half.inc("c", static_cast<uint64_t>(i));
        all.observe("h", i * 0.37);
        all.inc("c", static_cast<uint64_t>(i));
    }
    MetricsRegistry ab, ba;
    ab.merge(odd);
    ab.merge(even);
    ba.merge(even);
    ba.merge(odd);

    auto json = [](const MetricsRegistry &r) {
        std::ostringstream os;
        writeMetricsJson(os, r.snapshot());
        return os.str();
    };
    EXPECT_EQ(json(ab), json(ba));
    EXPECT_EQ(json(ab), json(all));
}

// ------------------------------------------------- scheduler streams

/** Simulated (circuit-driven) backends from the global registry. */
std::vector<std::string>
simulatedBackends()
{
    std::vector<std::string> out;
    for (const std::string &name :
         engine::Registry::global().names())
        if (engine::Registry::global().get(name).needsCircuit())
            out.push_back(name);
    return out;
}

/** A named RunConfig stress mutation (mirrors the cross-backend
 *  harness scenarios). */
struct Scenario
{
    const char *name;
    void (*apply)(engine::RunConfig &);
};

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> table = {
        {"baseline", [](engine::RunConfig &) {}},
        {"tight-timeouts",
         [](engine::RunConfig &c) {
             c.adapt_timeout = 2;
             c.bfs_timeout = 3;
             c.drop_timeout = 5;
         }},
        {"factory-starvation",
         [](engine::RunConfig &c) {
             c.magic_production_cycles = 60;
             c.magic_buffer_capacity = 1;
         }},
    };
    return table;
}

engine::WorkItem
itemFor(const circuit::Circuit *circ, const Scenario &s)
{
    engine::WorkItem item;
    item.app = apps::AppKind::SQ;
    item.app_name = circ->name();
    item.circuit = circ;
    item.config.code_distance = 5;
    item.config.seed = 99;
    s.apply(item.config);
    return item;
}

/** Canonical stream of @p rec without the FastForwardSkip markers. */
std::vector<TraceEvent>
comparableStream(RunRecorder &rec)
{
    rec.finish();
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : rec.events())
        if (e.kind != EventKind::FastForwardSkip)
            out.push_back(e);
    return out;
}

TEST(Obs, TracingNeverChangesResults)
{
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, {8, 2}));
    engine::Registry &registry = engine::Registry::global();
    for (const Scenario &s : scenarios()) {
        for (const std::string &name : simulatedBackends()) {
            const engine::Backend &b = registry.get(name);
            std::string what =
                name + " / " + s.name;

            engine::WorkItem item = itemFor(&circ, s);
            engine::Metrics off = b.run(item);

            RunRecorder rec(0, circ.name(), name);
            item.config.trace = &rec;
            engine::Metrics on = b.run(item);

            EXPECT_EQ(on.schedule_cycles, off.schedule_cycles)
                << what;
            EXPECT_EQ(on.critical_path_cycles,
                      off.critical_path_cycles)
                << what;
            EXPECT_EQ(on.physical_qubits, off.physical_qubits)
                << what;
            EXPECT_EQ(on.extras, off.extras) << what;
            EXPECT_FALSE(rec.events().empty()) << what;
        }
    }
}

TEST(Obs, EventStreamInvariantAcrossExecutionModes)
{
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, {8, 2}));
    engine::Registry &registry = engine::Registry::global();
    for (const Scenario &s : scenarios()) {
        for (const std::string &name : simulatedBackends()) {
            const engine::Backend &b = registry.get(name);
            std::string what = name + std::string(" / ") + s.name;

            engine::WorkItem item = itemFor(&circ, s);
            RunRecorder stepped_rec(0, circ.name(), name);
            item.config.fast_forward = false;
            item.config.trace = &stepped_rec;
            b.run(item);

            RunRecorder ff_rec(0, circ.name(), name);
            item.config.fast_forward = true;
            item.config.trace = &ff_rec;
            b.run(item);

            std::vector<TraceEvent> stepped =
                comparableStream(stepped_rec);
            std::vector<TraceEvent> ff = comparableStream(ff_rec);
            ASSERT_EQ(stepped.size(), ff.size()) << what;
            for (size_t i = 0; i < stepped.size(); ++i) {
                if (stepped[i] == ff[i])
                    continue;
                ADD_FAILURE()
                    << what << ": event " << i << " diverged: "
                    << "stepped {cycle " << stepped[i].cycle << ", "
                    << eventKindName(stepped[i].kind) << ", op "
                    << stepped[i].op << "} vs ff {cycle "
                    << ff[i].cycle << ", "
                    << eventKindName(ff[i].kind) << ", op "
                    << ff[i].op << "}";
                break;
            }
        }
    }
}

TEST(Obs, HeatmapBucketsSumToLinkTotals)
{
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, {8, 2}));
    const engine::Backend &b = engine::Registry::global().get(
        engine::backends::surgery_sim);
    engine::WorkItem item = itemFor(&circ, scenarios().front());
    RunRecorder rec(0, circ.name(),
                    engine::backends::surgery_sim);
    item.config.trace = &rec;
    b.run(item);
    rec.finish();

    const HeatmapAccumulator &hm = rec.heatmap();
    ASSERT_TRUE(hm.configured());
    double grand_total = 0;
    for (int x = 0; x < hm.width(); ++x)
        for (int y = 0; y < hm.height(); ++y)
            for (int dir = 0; dir < 2; ++dir) {
                double from_buckets = 0;
                for (int bk = 0;
                     bk < HeatmapAccumulator::max_buckets; ++bk)
                    from_buckets += hm.at(x, y, dir, bk);
                EXPECT_DOUBLE_EQ(from_buckets,
                                 hm.linkTotal(x, y, dir))
                    << "link (" << x << ", " << y << ", " << dir
                    << ")";
                grand_total += from_buckets;
            }
    EXPECT_GT(grand_total, 0.0)
        << "a surgery run should hold mesh links";
}

// ---------------------------------------------------- session sinks

TEST(Obs, SweepSinksBitIdenticalAcrossThreadCounts)
{
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""}};
    grid.backends = simulatedBackends();
    grid.policies = {6};
    grid.distances = {3};
    grid.base.seed = 1234;

    engine::SweepOptions off_opts;
    off_opts.num_threads = 2;
    std::vector<engine::SweepPoint> off =
        engine::SweepDriver().run(grid, off_opts);

    std::string first_trace, first_heatmap, first_metrics;
    for (int threads : {1, 2, 8}) {
        TraceSession session;
        engine::SweepOptions opts;
        opts.num_threads = threads;
        opts.trace = &session;
        std::vector<engine::SweepPoint> on =
            engine::SweepDriver().run(grid, opts);

        // Results bit-identical to the untraced sweep.
        ASSERT_EQ(on.size(), off.size());
        for (size_t i = 0; i < off.size(); ++i) {
            EXPECT_EQ(on[i].metrics.schedule_cycles,
                      off[i].metrics.schedule_cycles)
                << off[i].backend;
            EXPECT_EQ(on[i].metrics.extras, off[i].metrics.extras)
                << off[i].backend;
        }
        EXPECT_EQ(session.runs(), grid.points());

        std::ostringstream trace_os, heatmap_os, metrics_os;
        session.writeTrace(trace_os);
        session.writeHeatmap(heatmap_os);
        session.writeMetrics(metrics_os);
        EXPECT_FALSE(trace_os.str().empty());
        if (first_trace.empty()) {
            first_trace = trace_os.str();
            first_heatmap = heatmap_os.str();
            first_metrics = metrics_os.str();
            continue;
        }
        EXPECT_EQ(trace_os.str(), first_trace)
            << "trace sink diverged at " << threads << " threads";
        EXPECT_EQ(heatmap_os.str(), first_heatmap)
            << "heatmap sink diverged at " << threads
            << " threads";
        EXPECT_EQ(metrics_os.str(), first_metrics)
            << "metrics sink diverged at " << threads
            << " threads";
    }
}

} // namespace
} // namespace qsurf::obs
