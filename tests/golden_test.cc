/**
 * @file
 * Golden-metrics regression tests: exact, pre-recorded outputs of
 * every registered backend on a fixed-seed app grid, checked at
 * sweep thread counts 1, 2 and 8.
 *
 * The values below were captured from the cycle-stepped simulators
 * before the event-driven fast-forward rewrite; the rewrite (and any
 * later hot-path optimization) must keep every backend bit-identical
 * to them — same schedule_cycles, same fallback/detour/drop
 * counters.  A divergence here means results changed, not just
 * performance.
 *
 * The FastForwardMatchesBaseline tests are the stronger, generative
 * form of the same guarantee: the schedulers re-run with the
 * fast-forward jump disabled (the original one-cycle-at-a-time loop)
 * must produce identical results field by field, including under
 * aggressive escalation timeouts and factory-limited magic-state
 * production, which the fixed grid cannot reach.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/apps.h"
#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "engine/sweep.h"
#include "surgery/chain_scheduler.h"

namespace qsurf::engine {
namespace {

/** One pinned grid point. */
struct Golden
{
    const char *app;
    const char *backend;
    int policy;
    uint64_t schedule_cycles;
    uint64_t critical_path_cycles;
    uint64_t fallbacks; ///< yx_fallbacks or transpose_fallbacks.
    uint64_t bfs_detours;
    uint64_t drops;
};

/**
 * Captured at seed 1234, d = 5, kq = 1e6.  Re-pinned after two
 * deliberate behavior fixes (PR 5): the collinear-corridor
 * route-diversity fix (the transposed fallback now mirrors to the
 * opposite corridor, changing surgery/hybrid routing) and the
 * Placer::split smallest-attachment spill (changing optimized
 * layouts, hence every policy-6 simulated row).  Policy-0 braid and
 * planar rows are unchanged from the original capture — naive
 * layouts and braid routes were untouched.
 */
const std::vector<Golden> &
goldens()
{
    static const std::vector<Golden> table = {
        {"SQ", "double-defect", 0, 5644u, 5060u, 48u, 0u, 0u},
        {"SQ", "planar", 0, 3318u, 2840u, 0u, 0u, 0u},
        {"SQ", "planar/surgery-sim", 0, 21336u, 18692u, 12u, 52u, 16u},
        {"SQ", "double-defect-model", 0, 2733333u, 2733333u, 0u, 0u, 0u},
        {"SQ", "planar-model", 0, 6001903u, 6001903u, 0u, 0u, 0u},
        {"SQ", "planar/surgery-model", 0, 15346109u, 15346109u, 0u, 0u, 0u},
        {"SQ", "hybrid/mixed-sim", 0, 5228u, 4980u, 12u, 0u, 0u},
        {"SQ", "double-defect", 6, 5311u, 5060u, 44u, 12u, 1u},
        {"SQ", "planar", 6, 3318u, 2840u, 0u, 0u, 0u},
        {"SQ", "planar/surgery-sim", 6, 18716u, 15132u, 48u, 76u, 48u},
        {"SQ", "double-defect-model", 6, 2733333u, 2733333u, 0u, 0u, 0u},
        {"SQ", "planar-model", 6, 6001903u, 6001903u, 0u, 0u, 0u},
        {"SQ", "planar/surgery-model", 6, 15346109u, 15346109u, 0u, 0u, 0u},
        {"SQ", "hybrid/mixed-sim", 6, 5120u, 4940u, 24u, 9u, 0u},
        {"SHA-1", "double-defect", 0, 4462u, 1363u, 90u, 52u, 40u},
        {"SHA-1", "planar", 0, 1399u, 720u, 0u, 0u, 0u},
        {"SHA-1", "planar/surgery-sim", 0, 16739u, 8592u, 52u, 385u, 3185u},
        {"SHA-1", "double-defect-model", 0, 619119u, 466667u, 0u, 0u, 0u},
        {"SHA-1", "planar-model", 0, 1530608u, 1530608u, 0u, 0u, 0u},
        {"SHA-1", "planar/surgery-model", 0, 8820152u, 4243967u, 0u, 0u, 0u},
        {"SHA-1", "hybrid/mixed-sim", 0, 1775u, 1359u, 57u, 260u, 52u},
        {"SHA-1", "double-defect", 6, 1612u, 1363u, 69u, 93u, 10u},
        {"SHA-1", "planar", 6, 1399u, 720u, 0u, 0u, 0u},
        {"SHA-1", "planar/surgery-sim", 6, 10753u, 7100u, 47u, 181u, 1248u},
        {"SHA-1", "double-defect-model", 6, 619119u, 466667u, 0u, 0u, 0u},
        {"SHA-1", "planar-model", 6, 1530608u, 1530608u, 0u, 0u, 0u},
        {"SHA-1", "planar/surgery-model", 6, 8820152u, 4243967u, 0u, 0u, 0u},
        {"SHA-1", "hybrid/mixed-sim", 6, 1534u, 1330u, 82u, 51u, 1u},
    };
    return table;
}

/** The grid the table was captured from. */
SweepGrid
goldenGrid()
{
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::SHA1, {8, 1}, ""}};
    grid.backends = {
        backends::double_defect,      backends::planar,
        backends::surgery_sim,        backends::double_defect_model,
        backends::planar_model,       backends::surgery_model,
        backends::hybrid_mixed,
    };
    grid.policies = {0, 6};
    grid.distances = {5};
    grid.sizes = {1e6};
    grid.base.seed = 1234;
    return grid;
}

void
checkAgainstGoldens(int threads, bool legacy_baseline = false)
{
    SweepOptions opts;
    opts.num_threads = threads;
    SweepGrid grid = goldenGrid();
    if (legacy_baseline) {
        // bench/perf_engine's recorded baseline: the cycle-stepped
        // loop on the pre-optimization execution paths.  It must
        // reproduce the pinned values too, or the A/B perf numbers
        // would compare different computations.
        grid.base.fast_forward = false;
        grid.base.legacy_baseline = true;
    }
    auto results = SweepDriver().run(grid, opts);
    const auto &table = goldens();
    ASSERT_EQ(results.size(), table.size());
    for (size_t i = 0; i < table.size(); ++i) {
        const Golden &g = table[i];
        const Metrics &m = results[i].metrics;
        EXPECT_EQ(results[i].app_name, g.app) << "point " << i;
        EXPECT_EQ(results[i].backend, g.backend) << "point " << i;
        EXPECT_EQ(results[i].policy, g.policy) << "point " << i;
        EXPECT_EQ(m.schedule_cycles, g.schedule_cycles)
            << g.app << " / " << g.backend << " / policy " << g.policy
            << " at " << threads << " threads";
        EXPECT_EQ(m.critical_path_cycles, g.critical_path_cycles)
            << g.app << " / " << g.backend << " / policy " << g.policy;
        auto fallbacks = static_cast<uint64_t>(m.extra(
            "yx_fallbacks", m.extra("transpose_fallbacks")));
        EXPECT_EQ(fallbacks, g.fallbacks)
            << g.app << " / " << g.backend << " / policy " << g.policy;
        EXPECT_EQ(static_cast<uint64_t>(m.extra("bfs_detours")),
                  g.bfs_detours)
            << g.app << " / " << g.backend << " / policy " << g.policy;
        EXPECT_EQ(static_cast<uint64_t>(m.extra("drops")), g.drops)
            << g.app << " / " << g.backend << " / policy " << g.policy;
    }
}

TEST(Golden, OneThread) { checkAgainstGoldens(1); }
TEST(Golden, TwoThreads) { checkAgainstGoldens(2); }
TEST(Golden, EightThreads) { checkAgainstGoldens(8); }
TEST(Golden, LegacyBaselineMode) { checkAgainstGoldens(1, true); }

/** One pinned hybrid point: the scheme-choice histogram and the
 *  arbitration counters, per arbiter. */
struct HybridGolden
{
    const char *app;
    int policy;
    int arbiter;
    uint64_t schedule_cycles;
    uint64_t braid_ops;
    uint64_t teleport_ops;
    uint64_t surgery_ops;
    uint64_t arbiter_fallbacks;
    uint64_t drops;
};

/**
 * Captured at seed 1234, d = 5, on the golden grid's two apps, for
 * the cost-greedy (0) and congestion-reactive (1) arbiters.  The
 * histogram is the hybrid backend's core output — a change here
 * means arbitration decisions moved, not just performance.
 */
TEST(Golden, HybridSchemeHistogram)
{
    static const std::vector<HybridGolden> table = {
        {"SQ", 0, 0, 5228u, 648u, 0u, 82u, 0u, 0u},
        {"SQ", 0, 1, 5228u, 648u, 0u, 82u, 0u, 0u},
        {"SQ", 6, 0, 5120u, 600u, 0u, 130u, 0u, 0u},
        {"SQ", 6, 1, 5120u, 600u, 0u, 130u, 0u, 0u},
        {"SHA-1", 0, 0, 1775u, 838u, 4u, 8u, 0u, 52u},
        {"SHA-1", 0, 1, 1756u, 807u, 35u, 8u, 29u, 29u},
        {"SHA-1", 6, 0, 1534u, 654u, 26u, 170u, 0u, 1u},
        {"SHA-1", 6, 1, 1522u, 653u, 24u, 173u, 1u, 1u},
    };

    SweepGrid grid = goldenGrid();
    grid.backends = {backends::hybrid_mixed};
    grid.arbiters = {0, 1};
    SweepOptions opts;
    opts.num_threads = 2;
    auto results = SweepDriver().run(grid, opts);
    ASSERT_EQ(results.size(), table.size());
    for (size_t i = 0; i < table.size(); ++i) {
        const HybridGolden &g = table[i];
        const Metrics &m = results[i].metrics;
        std::string what = std::string(g.app) + " / policy "
            + std::to_string(g.policy) + " / arbiter "
            + std::to_string(g.arbiter);
        EXPECT_EQ(results[i].app_name, g.app) << what;
        EXPECT_EQ(results[i].policy, g.policy) << what;
        EXPECT_EQ(results[i].arbiter, g.arbiter) << what;
        EXPECT_EQ(m.schedule_cycles, g.schedule_cycles) << what;
        EXPECT_EQ(static_cast<uint64_t>(m.extra("braid_ops")),
                  g.braid_ops)
            << what;
        EXPECT_EQ(static_cast<uint64_t>(m.extra("teleport_ops")),
                  g.teleport_ops)
            << what;
        EXPECT_EQ(static_cast<uint64_t>(m.extra("surgery_ops")),
                  g.surgery_ops)
            << what;
        EXPECT_EQ(
            static_cast<uint64_t>(m.extra("arbiter_fallbacks")),
            g.arbiter_fallbacks)
            << what;
        EXPECT_EQ(static_cast<uint64_t>(m.extra("drops")), g.drops)
            << what;
    }
}

void
expectBraidIdentical(const braid::BraidResult &ff,
                     const braid::BraidResult &base,
                     const std::string &what)
{
    EXPECT_EQ(ff.schedule_cycles, base.schedule_cycles) << what;
    EXPECT_EQ(ff.critical_path_cycles, base.critical_path_cycles)
        << what;
    EXPECT_DOUBLE_EQ(ff.mesh_utilization, base.mesh_utilization)
        << what;
    EXPECT_EQ(ff.braids_placed, base.braids_placed) << what;
    EXPECT_EQ(ff.placement_failures, base.placement_failures) << what;
    EXPECT_EQ(ff.yx_fallbacks, base.yx_fallbacks) << what;
    EXPECT_EQ(ff.bfs_detours, base.bfs_detours) << what;
    EXPECT_EQ(ff.drops, base.drops) << what;
    EXPECT_EQ(ff.magic_starvations, base.magic_starvations) << what;
    EXPECT_DOUBLE_EQ(ff.layout_cost, base.layout_cost) << what;
    EXPECT_EQ(base.ff_skipped_cycles, 0u) << what;
}

TEST(FastForwardMatchesBaseline, BraidAcrossPolicies)
{
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SHA1, {8, 1}));
    for (int policy : {0, 1, 4, 6}) {
        braid::BraidOptions opts;
        opts.code_distance = 5;
        opts.seed = 7;
        braid::BraidResult base, ff;
        opts.fast_forward = false;
        base = braid::scheduleBraids(
            circ, static_cast<braid::Policy>(policy), opts);
        opts.fast_forward = true;
        ff = braid::scheduleBraids(
            circ, static_cast<braid::Policy>(policy), opts);
        expectBraidIdentical(ff, base,
                             "policy " + std::to_string(policy));
        EXPECT_GT(ff.ff_skipped_cycles, 0u)
            << "policy " << policy
            << ": d-round stabilization waits should fast-forward";
    }
}

TEST(FastForwardMatchesBaseline, BraidTightTimeoutsAndStarvation)
{
    // Aggressive escalation (adapt/bfs/drop crossings every few
    // cycles) plus factory-limited magic-state production, so the
    // jump planner must stop exactly on every kind of threshold.
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, {8, 2}));
    braid::BraidOptions opts;
    opts.code_distance = 7;
    opts.adapt_timeout = 2;
    opts.bfs_timeout = 3;
    opts.drop_timeout = 5;
    opts.magic_production_cycles = 40;
    opts.magic_buffer_capacity = 1;
    opts.seed = 11;

    opts.fast_forward = false;
    braid::BraidResult base =
        braid::scheduleBraids(circ, braid::Policy::Combined, opts);
    opts.fast_forward = true;
    braid::BraidResult ff =
        braid::scheduleBraids(circ, braid::Policy::Combined, opts);
    expectBraidIdentical(ff, base, "tight timeouts + starvation");
    EXPECT_GT(base.magic_starvations, 0u)
        << "config should actually exercise factory starvation";
    EXPECT_GT(ff.ff_skipped_cycles, 0u);
}

TEST(FastForwardMatchesBaseline, SurgeryChains)
{
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SHA1, {8, 1}));
    for (int d : {5, 9}) {
        surgery::SurgeryOptions opts;
        opts.code_distance = d;
        opts.seed = 3;
        opts.fast_forward = false;
        surgery::SurgeryResult base =
            surgery::scheduleSurgery(circ, opts);
        opts.fast_forward = true;
        surgery::SurgeryResult ff =
            surgery::scheduleSurgery(circ, opts);

        std::string what = "surgery d=" + std::to_string(d);
        EXPECT_EQ(ff.schedule_cycles, base.schedule_cycles) << what;
        EXPECT_DOUBLE_EQ(ff.mesh_utilization, base.mesh_utilization)
            << what;
        EXPECT_EQ(ff.chains_placed, base.chains_placed) << what;
        EXPECT_EQ(ff.placement_failures, base.placement_failures)
            << what;
        EXPECT_EQ(ff.transpose_fallbacks, base.transpose_fallbacks)
            << what;
        EXPECT_EQ(ff.bfs_detours, base.bfs_detours) << what;
        EXPECT_EQ(ff.drops, base.drops) << what;
        EXPECT_EQ(ff.total_chain_tiles, base.total_chain_tiles)
            << what;
        EXPECT_EQ(ff.max_chain_tiles, base.max_chain_tiles) << what;
        EXPECT_EQ(ff.peak_live_chains, base.peak_live_chains) << what;
        EXPECT_DOUBLE_EQ(ff.avg_live_chains, base.avg_live_chains)
            << what;
        EXPECT_EQ(base.ff_skipped_cycles, 0u) << what;
        EXPECT_GT(ff.ff_skipped_cycles, 0u) << what;
    }
}

TEST(FastForwardMatchesBaseline, SurgeryFactoryStarvation)
{
    // Rate-limited factory patches: the jump planner must stop on
    // every replenishment that could re-stock a starved T merge.
    circuit::Circuit circ = circuit::decompose(
        apps::generate(apps::AppKind::SQ, {8, 2}));
    surgery::SurgeryOptions opts;
    opts.code_distance = 5;
    opts.magic_production_cycles = 60;
    opts.magic_buffer_capacity = 1;
    opts.seed = 11;

    opts.fast_forward = false;
    surgery::SurgeryResult base = surgery::scheduleSurgery(circ, opts);
    opts.fast_forward = true;
    surgery::SurgeryResult ff = surgery::scheduleSurgery(circ, opts);

    EXPECT_EQ(ff.schedule_cycles, base.schedule_cycles);
    EXPECT_EQ(ff.chains_placed, base.chains_placed);
    EXPECT_EQ(ff.placement_failures, base.placement_failures);
    EXPECT_EQ(ff.drops, base.drops);
    EXPECT_EQ(ff.magic_starvations, base.magic_starvations);
    EXPECT_GT(base.magic_starvations, 0u)
        << "config should actually exercise factory starvation";
    EXPECT_GT(ff.ff_skipped_cycles, 0u);
}

} // namespace
} // namespace qsurf::engine
