/**
 * @file
 * Tests for interaction-graph extraction (the Section 6.2 input).
 */

#include <gtest/gtest.h>

#include "circuit/interaction.h"

namespace qsurf::circuit {
namespace {

TEST(Interaction, CountsRepeatedPairs)
{
    Circuit c(3);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::CNOT, 1, 0); // same unordered pair
    c.addGate(GateKind::CZ, 1, 2);
    InteractionGraph g = interactionGraph(c);
    EXPECT_EQ(g.num_qubits, 3);
    EXPECT_EQ(g.edges.size(), 2u);
    EXPECT_EQ(g.edges.at({0, 1}), 2u);
    EXPECT_EQ(g.edges.at({1, 2}), 1u);
}

TEST(Interaction, SingleQubitGatesAddNoEdges)
{
    Circuit c(2);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::T, 1);
    c.addGate(GateKind::MeasZ, 0);
    InteractionGraph g = interactionGraph(c);
    EXPECT_TRUE(g.edges.empty());
    EXPECT_EQ(g.totalWeight(), 0u);
}

TEST(Interaction, ToffoliContributesAllThreePairs)
{
    Circuit c(3);
    c.addGate(GateKind::Toffoli, 0, 1, 2);
    InteractionGraph g = interactionGraph(c);
    EXPECT_EQ(g.edges.size(), 3u);
    EXPECT_EQ(g.edges.at({0, 1}), 1u);
    EXPECT_EQ(g.edges.at({0, 2}), 1u);
    EXPECT_EQ(g.edges.at({1, 2}), 1u);
}

TEST(Interaction, DegreeSumsIncidentWeight)
{
    Circuit c(3);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::CNOT, 0, 2);
    c.addGate(GateKind::CNOT, 0, 1);
    InteractionGraph g = interactionGraph(c);
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(g.totalWeight(), 3u);
}

} // namespace
} // namespace qsurf::circuit
