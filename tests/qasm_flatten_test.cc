/**
 * @file
 * Flattening tests: register layout, module inlining with parameter
 * binding, nesting, recursion rejection, diagnostics — and the
 * write -> parse -> flatten round-trip property over generated
 * application circuits.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "common/logging.h"
#include "qasm/flatten.h"
#include "qasm/parser.h"
#include "qasm/writer.h"

namespace qsurf::qasm {
namespace {

using circuit::Circuit;
using circuit::GateKind;

Circuit
compile(const std::string &src)
{
    return flatten(parse(src));
}

TEST(Flatten, RegistersLayOutInDeclarationOrder)
{
    Circuit c = compile("qbit a[2]; qbit b[3]; H a[1]; H b[0];");
    EXPECT_EQ(c.numQubits(), 5);
    EXPECT_EQ(c.gate(0).qubit[0], 1); // a[1] -> 1
    EXPECT_EQ(c.gate(1).qubit[0], 2); // b[0] -> 2
}

TEST(Flatten, ClassicalRegistersTakeNoQubits)
{
    Circuit c = compile("qbit q[2]; cbit c[8]; H q[1];");
    EXPECT_EQ(c.numQubits(), 2);
}

TEST(Flatten, ModuleInliningBindsParameters)
{
    Circuit c = compile(
        "module bell(a, b) { H a; CNOT a, b; }\n"
        "qbit q[3]; bell q[2], q[0];");
    ASSERT_EQ(c.size(), 2);
    EXPECT_EQ(c.gate(0).kind, GateKind::H);
    EXPECT_EQ(c.gate(0).qubit[0], 2);
    EXPECT_EQ(c.gate(1).kind, GateKind::CNOT);
    EXPECT_EQ(c.gate(1).qubit[0], 2);
    EXPECT_EQ(c.gate(1).qubit[1], 0);
}

TEST(Flatten, NestedModulesInline)
{
    Circuit c = compile(
        "module inner(x) { T x; }\n"
        "module outer(a, b) { inner a; inner b; CNOT a, b; }\n"
        "qbit q[2]; outer q[0], q[1];");
    ASSERT_EQ(c.size(), 3);
    EXPECT_EQ(c.gate(0).kind, GateKind::T);
    EXPECT_EQ(c.gate(1).qubit[0], 1);
}

TEST(Flatten, RecursionIsFatal)
{
    EXPECT_THROW(compile("module loop(a) { loop a; }\n"
                         "qbit q[1]; loop q[0];"),
                 qsurf::FatalError);
}

TEST(Flatten, UnknownGateIsFatal)
{
    EXPECT_THROW(compile("qbit q[1]; Hadamard q[0];"),
                 qsurf::FatalError);
}

TEST(Flatten, ArityMismatchIsFatal)
{
    EXPECT_THROW(compile("qbit q[2]; CNOT q[0];"), qsurf::FatalError);
    EXPECT_THROW(compile("qbit q[2]; H q[0], q[1];"),
                 qsurf::FatalError);
}

TEST(Flatten, ModuleArgumentCountIsChecked)
{
    EXPECT_THROW(compile("module m(a, b) { CNOT a, b; }\n"
                         "qbit q[2]; m q[0];"),
                 qsurf::FatalError);
}

TEST(Flatten, IndexOutOfRangeIsFatal)
{
    EXPECT_THROW(compile("qbit q[2]; H q[2];"), qsurf::FatalError);
}

TEST(Flatten, UnknownRegisterIsFatal)
{
    EXPECT_THROW(compile("qbit q[2]; H r[0];"), qsurf::FatalError);
}

TEST(Flatten, AngleOnNonRzIsFatal)
{
    EXPECT_THROW(compile("qbit q[1]; H(0.5) q[0];"),
                 qsurf::FatalError);
}

TEST(Flatten, RzWithoutAngleIsFatal)
{
    EXPECT_THROW(compile("qbit q[1]; Rz q[0];"), qsurf::FatalError);
}

TEST(Flatten, ArrowOnNonMeasurementIsFatal)
{
    EXPECT_THROW(compile("qbit q[1]; cbit c[1]; H q[0] -> c[0];"),
                 qsurf::FatalError);
}

TEST(Flatten, ArrowToQubitRegisterIsFatal)
{
    EXPECT_THROW(compile("qbit q[2]; MeasZ q[0] -> q[1];"),
                 qsurf::FatalError);
}

TEST(Flatten, SampleHierarchicalProgramCompiles)
{
    Circuit c = compile(apps::sampleHierarchicalQasm());
    EXPECT_EQ(c.numQubits(), 5);
    EXPECT_GT(c.size(), 10);
    EXPECT_EQ(c.counts().measurements, 1u);
}

/**
 * Round-trip property: writing a flat circuit as QASM, parsing it
 * back and flattening reproduces the identical gate stream.
 */
class RoundTrip : public ::testing::TestWithParam<apps::AppKind>
{
};

TEST_P(RoundTrip, WriteParseFlattenIsIdentity)
{
    apps::GenOptions opts;
    opts.problem_size = 6;
    opts.max_iterations = 2;
    Circuit original = apps::generate(GetParam(), opts);

    Circuit back = compile(writeString(original));
    ASSERT_EQ(back.numQubits(), original.numQubits());
    ASSERT_EQ(back.size(), original.size());
    for (int i = 0; i < original.size(); ++i) {
        const circuit::Gate &a = original.gate(i);
        const circuit::Gate &b = back.gate(i);
        EXPECT_EQ(a.kind, b.kind) << "gate " << i;
        EXPECT_EQ(a.qubit, b.qubit) << "gate " << i;
        EXPECT_NEAR(a.angle, b.angle, 1e-9) << "gate " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, RoundTrip,
    ::testing::Values(apps::AppKind::GSE, apps::AppKind::SQ,
                      apps::AppKind::SHA1, apps::AppKind::IsingSemi,
                      apps::AppKind::IsingFull));

} // namespace
} // namespace qsurf::qasm
