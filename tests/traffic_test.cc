/**
 * @file
 * Synthetic-traffic tests: conservation invariants, saturation
 * behaviour (the basis for the model's circuit-switched ceiling),
 * pattern ordering and determinism.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "network/traffic.h"

namespace qsurf::network {
namespace {

TrafficOptions
base(double rate)
{
    TrafficOptions opts;
    opts.injection_rate = rate;
    opts.hold_cycles = 5;
    opts.cycles = 1500;
    return opts;
}

TEST(Traffic, ConservationInvariants)
{
    TrafficResult r = runTraffic(8, 8, base(0.02));
    EXPECT_GT(r.offered, 0u);
    EXPECT_LE(r.granted, r.offered);
    EXPECT_LE(r.completed, r.granted);
    EXPECT_GE(r.acceptance, 0.0);
    EXPECT_LE(r.acceptance, 1.0);
    EXPECT_GE(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
}

TEST(Traffic, LowLoadIsAcceptedPromptly)
{
    TrafficResult r = runTraffic(12, 12, base(0.001));
    EXPECT_GT(r.acceptance, 0.9);
    EXPECT_LT(r.mean_wait, 2.0);
}

TEST(Traffic, UtilizationGrowsWithLoadThenSaturates)
{
    TrafficResult lo = runTraffic(12, 12, base(0.002));
    TrafficResult mid = runTraffic(12, 12, base(0.02));
    TrafficResult hi = runTraffic(12, 12, base(0.3));
    EXPECT_LT(lo.utilization, mid.utilization);
    // The circuit-switched ceiling: utilization plateaus well below
    // full (the paper's ~22% and the model's dd_max_utilization).
    EXPECT_LT(hi.utilization, 0.5);
    EXPECT_GE(hi.utilization, mid.utilization * 0.5);
}

TEST(Traffic, SaturationWaitExplodes)
{
    TrafficResult lo = runTraffic(10, 10, base(0.002));
    TrafficResult hi = runTraffic(10, 10, base(0.3));
    EXPECT_GT(hi.mean_wait, lo.mean_wait * 5);
}

TEST(Traffic, LongerHoldsSaturateEarlier)
{
    TrafficOptions short_hold = base(0.05);
    short_hold.hold_cycles = 3;
    TrafficOptions long_hold = base(0.05);
    long_hold.hold_cycles = 15;
    TrafficResult s = runTraffic(10, 10, short_hold);
    TrafficResult l = runTraffic(10, 10, long_hold);
    EXPECT_GT(s.acceptance, l.acceptance)
        << "braids that stabilize longer keep routes busy longer";
}

TEST(Traffic, NeighborOutperformsTranspose)
{
    TrafficOptions n = base(0.05);
    n.pattern = TrafficPattern::Neighbor;
    TrafficOptions t = base(0.05);
    t.pattern = TrafficPattern::Transpose;
    TrafficResult rn = runTraffic(12, 12, n);
    TrafficResult rt = runTraffic(12, 12, t);
    EXPECT_GT(rn.acceptance, rt.acceptance)
        << "short local routes must beat long diagonal ones";
}

TEST(Traffic, HotspotCollapses)
{
    TrafficOptions h = base(0.05);
    h.pattern = TrafficPattern::Hotspot;
    TrafficResult r = runTraffic(12, 12, h);
    // Everyone converging on one node can serve at most one route
    // at a time.
    EXPECT_LT(r.acceptance, 0.5);
}

TEST(Traffic, DeterministicPerSeed)
{
    TrafficResult a = runTraffic(8, 8, base(0.02));
    TrafficResult b = runTraffic(8, 8, base(0.02));
    EXPECT_EQ(a.granted, b.granted);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Traffic, PatternNames)
{
    EXPECT_STREQ(trafficPatternName(TrafficPattern::Uniform),
                 "uniform");
    EXPECT_STREQ(trafficPatternName(TrafficPattern::Hotspot),
                 "hotspot");
}

TEST(Traffic, RejectsBadConfig)
{
    TrafficOptions opts = base(1.5);
    EXPECT_THROW(runTraffic(4, 4, opts), qsurf::FatalError);
    opts = base(0.1);
    opts.hold_cycles = 0;
    EXPECT_THROW(runTraffic(4, 4, opts), qsurf::FatalError);
}

} // namespace
} // namespace qsurf::network
