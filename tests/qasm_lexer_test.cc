/**
 * @file
 * Tokenizer tests: token classification, comments, numbers, arrows
 * and error positions.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "qasm/lexer.h"

namespace qsurf::qasm {
namespace {

std::vector<TokenKind>
kindsOf(const std::string &src)
{
    std::vector<TokenKind> out;
    for (const Token &t : tokenize(src))
        out.push_back(t.kind);
    return out;
}

TEST(Lexer, EmptyInputYieldsEof)
{
    auto toks = tokenize("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, SimpleStatement)
{
    EXPECT_EQ(kindsOf("H q[0];"),
              (std::vector<TokenKind>{
                  TokenKind::Identifier, TokenKind::Identifier,
                  TokenKind::LBracket, TokenKind::Integer,
                  TokenKind::RBracket, TokenKind::Semicolon,
                  TokenKind::EndOfFile}));
}

TEST(Lexer, HashAndSlashCommentsIgnored)
{
    EXPECT_EQ(kindsOf("# whole line\nH // rest\nX"),
              (std::vector<TokenKind>{TokenKind::Identifier,
                                      TokenKind::Identifier,
                                      TokenKind::EndOfFile}));
}

TEST(Lexer, FloatForms)
{
    for (const char *src : {"0.5", "-0.5", "1e3", "2.5E-2", ".75"}) {
        auto toks = tokenize(src);
        ASSERT_EQ(toks.size(), 2u) << src;
        EXPECT_EQ(toks[0].kind, TokenKind::Float) << src;
    }
}

TEST(Lexer, IntegerVsFloat)
{
    auto toks = tokenize("42 4.2");
    EXPECT_EQ(toks[0].kind, TokenKind::Integer);
    EXPECT_EQ(toks[0].text, "42");
    EXPECT_EQ(toks[1].kind, TokenKind::Float);
}

TEST(Lexer, ArrowToken)
{
    auto toks = tokenize("-> -1");
    EXPECT_EQ(toks[0].kind, TokenKind::Arrow);
    EXPECT_EQ(toks[1].kind, TokenKind::Integer);
    EXPECT_EQ(toks[1].text, "-1");
}

TEST(Lexer, PunctuationSet)
{
    EXPECT_EQ(kindsOf("( ) [ ] { } , ;"),
              (std::vector<TokenKind>{
                  TokenKind::LParen, TokenKind::RParen,
                  TokenKind::LBracket, TokenKind::RBracket,
                  TokenKind::LBrace, TokenKind::RBrace,
                  TokenKind::Comma, TokenKind::Semicolon,
                  TokenKind::EndOfFile}));
}

TEST(Lexer, TracksLineAndColumn)
{
    auto toks = tokenize("H\n  X");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].column, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, IdentifiersWithUnderscoresAndDigits)
{
    auto toks = tokenize("_foo bar_2");
    EXPECT_EQ(toks[0].text, "_foo");
    EXPECT_EQ(toks[1].text, "bar_2");
}

TEST(Lexer, UnknownCharacterIsFatal)
{
    EXPECT_THROW(tokenize("H q@0;"), qsurf::FatalError);
    EXPECT_THROW(tokenize("$"), qsurf::FatalError);
}

TEST(Lexer, TokenKindNamesAreDistinctive)
{
    EXPECT_STREQ(tokenKindName(TokenKind::Arrow), "'->'");
    EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
}

} // namespace
} // namespace qsurf::qasm
