/**
 * @file
 * Unit tests for the Circuit IR: operand validation, op counting,
 * append semantics and gate accessors.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "common/logging.h"

namespace qsurf::circuit {
namespace {

TEST(Circuit, StartsEmpty)
{
    Circuit c(4);
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.size(), 0);
    EXPECT_TRUE(c.empty());
}

TEST(Circuit, AddGateReturnsIndex)
{
    Circuit c(3);
    EXPECT_EQ(c.addGate(GateKind::H, 0), 0);
    EXPECT_EQ(c.addGate(GateKind::CNOT, 0, 1), 1);
    EXPECT_EQ(c.addGate(GateKind::Toffoli, 0, 1, 2), 2);
    EXPECT_EQ(c.size(), 3);
}

TEST(Circuit, RejectsOutOfRangeOperand)
{
    Circuit c(2);
    EXPECT_THROW(c.addGate(GateKind::H, 2), FatalError);
    EXPECT_THROW(c.addGate(GateKind::H, -1), FatalError);
    EXPECT_THROW(c.addGate(GateKind::CNOT, 0, 5), FatalError);
}

TEST(Circuit, RejectsRepeatedOperand)
{
    Circuit c(3);
    EXPECT_THROW(c.addGate(GateKind::CNOT, 1, 1), FatalError);
    EXPECT_THROW(c.addGate(GateKind::Toffoli, 0, 1, 0), FatalError);
}

TEST(Circuit, RejectsNegativeQubitCount)
{
    EXPECT_THROW(Circuit(-1), FatalError);
}

TEST(Circuit, EnsureQubitsOnlyGrows)
{
    Circuit c(2);
    c.ensureQubits(5);
    EXPECT_EQ(c.numQubits(), 5);
    c.ensureQubits(3);
    EXPECT_EQ(c.numQubits(), 5);
}

TEST(Circuit, GateAccessors)
{
    Circuit c(3);
    c.addRz(0.25, 2);
    const Gate &g = c.gate(0);
    EXPECT_EQ(g.kind, GateKind::Rz);
    EXPECT_DOUBLE_EQ(g.angle, 0.25);
    EXPECT_EQ(g.arity(), 1);
    EXPECT_TRUE(g.touches(2));
    EXPECT_FALSE(g.touches(0));
    EXPECT_EQ(g.operands().size(), 1u);
}

TEST(Circuit, CountsClassifyGates)
{
    Circuit c(3);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::T, 1);
    c.addGate(GateKind::Tdag, 1);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::Toffoli, 0, 1, 2);
    c.addGate(GateKind::MeasZ, 0);
    OpCounts k = c.counts();
    EXPECT_EQ(k.total, 6u);
    EXPECT_EQ(k.single_qubit, 4u);
    EXPECT_EQ(k.two_qubit, 1u);
    EXPECT_EQ(k.three_qubit, 1u);
    EXPECT_EQ(k.t_gates, 2u);
    EXPECT_EQ(k.measurements, 1u);
}

TEST(Circuit, AppendConcatenatesAndGrows)
{
    Circuit a(2);
    a.addGate(GateKind::H, 0);
    Circuit b(4);
    b.addGate(GateKind::CNOT, 2, 3);
    a.append(b);
    EXPECT_EQ(a.numQubits(), 4);
    EXPECT_EQ(a.size(), 2);
    EXPECT_EQ(a.gate(1).kind, GateKind::CNOT);
}

TEST(Circuit, NameIsPreserved)
{
    Circuit c("myapp", 1);
    EXPECT_EQ(c.name(), "myapp");
    c.setName("other");
    EXPECT_EQ(c.name(), "other");
}

TEST(Circuit, RangeForIteratesInOrder)
{
    Circuit c(2);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::X, 1);
    int seen = 0;
    for (const Gate &g : c) {
        (void)g;
        ++seen;
    }
    EXPECT_EQ(seen, 2);
}

} // namespace
} // namespace qsurf::circuit
