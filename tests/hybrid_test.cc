/**
 * @file
 * Mixed-scheme hybrid backend tests: arbiter cost-model behavior,
 * scheduler invariants (histogram accounting, determinism,
 * fast-forward equivalence, congestion-reactive fallback), and the
 * registry backend's plumbing.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "circuit/decompose.h"
#include "common/logging.h"
#include "engine/registry.h"
#include "hybrid/arbiter.h"
#include "hybrid/scheduler.h"

namespace qsurf::hybrid {
namespace {

using circuit::Circuit;
using circuit::GateKind;

void
addCnot(Circuit &c, int a, int b)
{
    c.addGate(GateKind::CNOT, static_cast<int32_t>(a),
              static_cast<int32_t>(b));
}

circuit::Circuit
smallApp(apps::AppKind kind, int size, int iters)
{
    apps::GenOptions gen;
    gen.problem_size = size;
    gen.max_iterations = iters;
    return circuit::decompose(apps::generate(kind, gen));
}

ArbiterCosts
defaultCosts(int d)
{
    ArbiterCosts k;
    k.code_distance = d;
    k.swap_hop_cycles = 1.2 * d; // Typical tech point.
    return k;
}

TEST(Arbiter, ForceKindsAlwaysPickTheirScheme)
{
    ArbiterCosts k = defaultCosts(5);
    OpContext ctx;
    ctx.tiles = 3;
    EXPECT_EQ(makeArbiter(ArbiterKind::ForceBraid, k)->choose(ctx),
              Scheme::Braid);
    EXPECT_EQ(makeArbiter(ArbiterKind::ForceTeleport, k)->choose(ctx),
              Scheme::Teleport);
    EXPECT_EQ(makeArbiter(ArbiterKind::ForceSurgery, k)->choose(ctx),
              Scheme::Surgery);
}

TEST(Arbiter, GreedyPicksSurgeryForAdjacentPatches)
{
    // One merge/split round pair between adjacent patches undercuts
    // both braid segments and any swap transport.
    ArbiterCosts k = defaultCosts(5);
    OpContext ctx;
    ctx.tiles = 1;
    auto arb = makeArbiter(ArbiterKind::CostGreedy, k);
    EXPECT_EQ(arb->choose(ctx), Scheme::Surgery);
    EXPECT_LT(surgeryCost(k, ctx), braidCost(k, ctx));
    EXPECT_LT(surgeryCost(k, ctx), teleportCost(k, ctx));
}

TEST(Arbiter, GreedyPicksBraidAtDistanceWhenUncontended)
{
    // Braids are distance-insensitive; chains pay per tile and
    // teleports pay swap transport per tile.
    ArbiterCosts k = defaultCosts(5);
    OpContext ctx;
    ctx.tiles = 4;
    EXPECT_EQ(makeArbiter(ArbiterKind::CostGreedy, k)->choose(ctx),
              Scheme::Braid);
}

TEST(Arbiter, GreedyFlipsToTeleportUnderMeshLoad)
{
    // Past the circuit-switched saturation knee, exclusive corridors
    // inflate and the off-mesh overlay wins.
    ArbiterCosts k = defaultCosts(5);
    OpContext ctx;
    ctx.tiles = 2;
    ctx.mesh_load = 0.5;
    EXPECT_EQ(makeArbiter(ArbiterKind::CostGreedy, k)->choose(ctx),
              Scheme::Teleport);
    ctx.mesh_load = 0;
    EXPECT_EQ(makeArbiter(ArbiterKind::CostGreedy, k)->choose(ctx),
              Scheme::Braid);
}

TEST(Arbiter, ChannelBacklogPricesTeleportUp)
{
    ArbiterCosts k = defaultCosts(5);
    OpContext ctx;
    ctx.tiles = 2;
    double free_cost = teleportCost(k, ctx);
    ctx.channel_backlog = 40;
    EXPECT_DOUBLE_EQ(teleportCost(k, ctx), free_cost + 40.0);
}

TEST(Arbiter, OnlyReactiveFallsBackToTeleport)
{
    ArbiterCosts k = defaultCosts(5);
    EXPECT_FALSE(makeArbiter(ArbiterKind::CostGreedy, k)
                     ->fallbackToTeleport());
    EXPECT_TRUE(makeArbiter(ArbiterKind::CongestionReactive, k)
                    ->fallbackToTeleport());
    EXPECT_FALSE(makeArbiter(ArbiterKind::ForceBraid, k)
                     ->fallbackToTeleport());
}

TEST(Scheduler, HistogramAccountsEveryOp)
{
    Circuit circ = smallApp(apps::AppKind::SQ, 8, 2);
    HybridOptions opts;
    opts.code_distance = 5;
    HybridResult r = scheduleHybrid(circ, opts);
    EXPECT_EQ(r.commOps() + r.local_ops,
              static_cast<uint64_t>(circ.size()));
    EXPECT_GT(r.schedule_cycles, 0u);
    EXPECT_GE(r.schedule_cycles, r.critical_path_cycles);
}

TEST(Scheduler, DeterministicRepeatRuns)
{
    Circuit circ = smallApp(apps::AppKind::SHA1, 8, 1);
    HybridOptions opts;
    opts.code_distance = 5;
    opts.arbiter = ArbiterKind::CongestionReactive;
    HybridResult a = scheduleHybrid(circ, opts);
    HybridResult b = scheduleHybrid(circ, opts);
    EXPECT_EQ(a.schedule_cycles, b.schedule_cycles);
    EXPECT_EQ(a.braid_ops, b.braid_ops);
    EXPECT_EQ(a.teleport_ops, b.teleport_ops);
    EXPECT_EQ(a.surgery_ops, b.surgery_ops);
    EXPECT_EQ(a.placement_failures, b.placement_failures);
    EXPECT_EQ(a.drops, b.drops);
}

void
expectHybridIdentical(const HybridResult &ff, const HybridResult &base,
                      const std::string &what)
{
    EXPECT_EQ(ff.schedule_cycles, base.schedule_cycles) << what;
    EXPECT_EQ(ff.critical_path_cycles, base.critical_path_cycles)
        << what;
    EXPECT_DOUBLE_EQ(ff.mesh_utilization, base.mesh_utilization)
        << what;
    EXPECT_EQ(ff.peak_busy_links, base.peak_busy_links) << what;
    EXPECT_EQ(ff.braid_ops, base.braid_ops) << what;
    EXPECT_EQ(ff.teleport_ops, base.teleport_ops) << what;
    EXPECT_EQ(ff.surgery_ops, base.surgery_ops) << what;
    EXPECT_EQ(ff.local_ops, base.local_ops) << what;
    EXPECT_EQ(ff.arbiter_fallbacks, base.arbiter_fallbacks) << what;
    EXPECT_EQ(ff.placement_failures, base.placement_failures) << what;
    EXPECT_EQ(ff.transpose_fallbacks, base.transpose_fallbacks)
        << what;
    EXPECT_EQ(ff.bfs_detours, base.bfs_detours) << what;
    EXPECT_EQ(ff.drops, base.drops) << what;
    EXPECT_EQ(ff.magic_starvations, base.magic_starvations) << what;
    EXPECT_EQ(ff.peak_live_eprs, base.peak_live_eprs) << what;
    EXPECT_DOUBLE_EQ(ff.avg_live_eprs, base.avg_live_eprs) << what;
    EXPECT_EQ(base.ff_skipped_cycles, 0u) << what;
}

TEST(Scheduler, FastForwardMatchesSteppedAcrossArbiters)
{
    Circuit circ = smallApp(apps::AppKind::SHA1, 8, 1);
    for (int kind = 0; kind < num_arbiters; ++kind) {
        HybridOptions opts;
        opts.code_distance = 5;
        opts.arbiter = static_cast<ArbiterKind>(kind);
        opts.seed = 3;
        opts.fast_forward = false;
        HybridResult base = scheduleHybrid(circ, opts);
        opts.fast_forward = true;
        HybridResult ff = scheduleHybrid(circ, opts);
        expectHybridIdentical(
            ff, base,
            std::string("arbiter ")
                + arbiterName(static_cast<ArbiterKind>(kind)));
        EXPECT_GT(ff.ff_skipped_cycles, 0u)
            << arbiterName(static_cast<ArbiterKind>(kind));
    }
}

TEST(Scheduler, FastForwardMatchesSteppedUnderStarvation)
{
    // Tight escalation plus rate-limited factories: the jump
    // planner must stop on every threshold crossing and every
    // replenishment, for all three schemes' T-gate paths.
    Circuit circ = smallApp(apps::AppKind::SQ, 8, 2);
    HybridOptions opts;
    opts.code_distance = 7;
    opts.adapt_timeout = 2;
    opts.bfs_timeout = 3;
    opts.drop_timeout = 5;
    opts.magic_production_cycles = 40;
    opts.magic_buffer_capacity = 1;
    opts.arbiter = ArbiterKind::CongestionReactive;
    opts.seed = 11;
    opts.fast_forward = false;
    HybridResult base = scheduleHybrid(circ, opts);
    opts.fast_forward = true;
    HybridResult ff = scheduleHybrid(circ, opts);
    expectHybridIdentical(ff, base, "starvation + tight timeouts");
    EXPECT_GT(base.magic_starvations, 0u)
        << "config should actually exercise factory starvation";
    EXPECT_GT(ff.ff_skipped_cycles, 0u);
}

TEST(Scheduler, ForceTeleportNeverTouchesTheMesh)
{
    Circuit circ = smallApp(apps::AppKind::SHA1, 8, 1);
    HybridOptions opts;
    opts.code_distance = 5;
    opts.arbiter = ArbiterKind::ForceTeleport;
    HybridResult r = scheduleHybrid(circ, opts);
    EXPECT_EQ(r.braid_ops + r.surgery_ops, 0u);
    EXPECT_GT(r.teleport_ops, 0u);
    EXPECT_DOUBLE_EQ(r.mesh_utilization, 0.0);
    EXPECT_EQ(r.peak_busy_links, 0u);
    EXPECT_GT(r.peak_live_eprs, 0u);
}

TEST(Scheduler, MixedRunNeverWorseThanWorstForcedScheme)
{
    // The arbitration guarantee at its weakest: picking per op can
    // not lose to the worst single-scheme commitment.
    Circuit circ = smallApp(apps::AppKind::SQ, 8, 2);
    HybridOptions opts;
    opts.code_distance = 5;

    opts.arbiter = ArbiterKind::CostGreedy;
    uint64_t greedy = scheduleHybrid(circ, opts).schedule_cycles;

    uint64_t worst = 0;
    for (ArbiterKind kind :
         {ArbiterKind::ForceBraid, ArbiterKind::ForceTeleport,
          ArbiterKind::ForceSurgery}) {
        opts.arbiter = kind;
        worst = std::max(worst,
                         scheduleHybrid(circ, opts).schedule_cycles);
    }
    EXPECT_LE(greedy, worst);
}

TEST(Scheduler, ReactiveArbiterFallsBackUnderContention)
{
    // Many concurrent long CNOTs on a small machine with a tight
    // drop timeout and the naive layout (so the hot pairs are far
    // apart): corridors stay contended, so the reactive arbiter
    // must re-route dropped ops onto the teleport overlay.
    Circuit circ(16);
    for (int r = 0; r < 6; ++r)
        for (int q = 0; q < 8; ++q)
            addCnot(circ, q, 15 - q);
    HybridOptions opts;
    opts.code_distance = 5;
    opts.drop_timeout = 4;
    opts.optimized_layout = false;
    opts.arbiter = ArbiterKind::CongestionReactive;
    HybridResult r = scheduleHybrid(circ, opts);
    EXPECT_GT(r.drops, 0u);
    EXPECT_GT(r.arbiter_fallbacks, 0u);
    EXPECT_GT(r.teleport_ops, 0u);
}

TEST(Scheduler, MonotoneInCodeDistance)
{
    Circuit circ = smallApp(apps::AppKind::SQ, 8, 2);
    uint64_t prev = 0;
    for (int d : {3, 5, 7, 9}) {
        HybridOptions opts;
        opts.code_distance = d;
        uint64_t cycles = scheduleHybrid(circ, opts).schedule_cycles;
        EXPECT_GE(cycles, prev) << "d=" << d;
        prev = cycles;
    }
}

TEST(Backend, RegistryRunMatchesDirectSimulation)
{
    Circuit circ = smallApp(apps::AppKind::SQ, 8, 2);
    engine::WorkItem item;
    item.app = apps::AppKind::SQ;
    item.circuit = &circ;
    item.config.code_distance = 5;
    item.config.seed = 7;
    item.config.hybrid_arbiter =
        static_cast<int>(ArbiterKind::CostGreedy);

    HybridOptions opts;
    opts.code_distance = 5;
    opts.seed = 7;
    opts.swap_hop_cycles = item.config.tech.swapHopCycles(5);
    HybridResult direct = scheduleHybrid(circ, opts);

    const engine::Backend &b =
        engine::Registry::global().get(engine::backends::hybrid_mixed);
    engine::Metrics m = b.run(item);
    EXPECT_EQ(m.schedule_cycles, direct.schedule_cycles);
    EXPECT_EQ(m.critical_path_cycles, direct.critical_path_cycles);
    EXPECT_DOUBLE_EQ(m.extra("braid_ops"),
                     static_cast<double>(direct.braid_ops));
    EXPECT_DOUBLE_EQ(m.extra("teleport_ops"),
                     static_cast<double>(direct.teleport_ops));
    EXPECT_DOUBLE_EQ(m.extra("surgery_ops"),
                     static_cast<double>(direct.surgery_ops));
    EXPECT_EQ(m.code, qec::CodeKind::Planar);
}

TEST(Backend, PrepareRejectsBadArbiter)
{
    Circuit circ = smallApp(apps::AppKind::SQ, 8, 2);
    engine::WorkItem item;
    item.circuit = &circ;
    item.config.hybrid_arbiter = 99;
    EXPECT_THROW(engine::Registry::global()
                     .get(engine::backends::hybrid_mixed)
                     .prepare(item),
                 FatalError);
}

} // namespace
} // namespace qsurf::hybrid
