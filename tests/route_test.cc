/**
 * @file
 * Routing tests: dimension-ordered path shape, adaptive BFS detours
 * around busy regions, and unreachability reporting.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "network/route.h"

namespace qsurf::network {
namespace {

void
expectContiguous(const Path &p)
{
    for (size_t i = 0; i + 1 < p.nodes.size(); ++i)
        EXPECT_EQ(manhattan(p.nodes[i], p.nodes[i + 1]), 1)
            << "gap at hop " << i;
}

TEST(XyRoute, MinimalAndXFirst)
{
    Path p = xyRoute(Coord{1, 1}, Coord{4, 3});
    expectContiguous(p);
    EXPECT_EQ(p.hops(), 5);
    EXPECT_EQ(p.source(), (Coord{1, 1}));
    EXPECT_EQ(p.dest(), (Coord{4, 3}));
    // The second node moves in x.
    EXPECT_EQ(p.nodes[1], (Coord{2, 1}));
}

TEST(YxRoute, MinimalAndYFirst)
{
    Path p = yxRoute(Coord{1, 1}, Coord{4, 3});
    expectContiguous(p);
    EXPECT_EQ(p.hops(), 5);
    EXPECT_EQ(p.nodes[1], (Coord{1, 2}));
}

TEST(Route, NegativeDirections)
{
    Path p = xyRoute(Coord{4, 3}, Coord{0, 0});
    expectContiguous(p);
    EXPECT_EQ(p.hops(), 7);
}

TEST(Route, DegenerateSameEndpoint)
{
    Path p = xyRoute(Coord{2, 2}, Coord{2, 2});
    EXPECT_EQ(p.hops(), 0);
    ASSERT_EQ(p.nodes.size(), 1u);
}

TEST(AdaptiveRoute, FindsShortestWhenFree)
{
    Mesh m(6, 6);
    auto p = adaptiveRoute(m, Coord{0, 0}, Coord{3, 2}, 1);
    ASSERT_TRUE(p.has_value());
    expectContiguous(*p);
    EXPECT_EQ(p->hops(), 5) << "BFS must find a minimal path";
}

TEST(AdaptiveRoute, DetoursAroundWall)
{
    Mesh m(5, 5);
    // Wall on column x=2, leaving only y=4 open.
    Path wall;
    for (int y = 0; y <= 3; ++y)
        wall.nodes.push_back(Coord{2, y});
    m.claim(wall, 7);

    auto p = adaptiveRoute(m, Coord{0, 0}, Coord{4, 0}, 1);
    ASSERT_TRUE(p.has_value());
    expectContiguous(*p);
    EXPECT_GT(p->hops(), 4) << "must detour below the wall";
    for (const Coord &c : p->nodes)
        EXPECT_TRUE(m.nodeAvailable(c, 1));
}

TEST(AdaptiveRoute, NulloptWhenSealed)
{
    Mesh m(5, 5);
    Path wall;
    for (int y = 0; y <= 4; ++y)
        wall.nodes.push_back(Coord{2, y});
    m.claim(wall, 7);
    EXPECT_FALSE(
        adaptiveRoute(m, Coord{0, 0}, Coord{4, 0}, 1).has_value());
}

TEST(AdaptiveRoute, OwnResourcesCountAsFree)
{
    Mesh m(5, 5);
    Path wall;
    for (int y = 0; y <= 4; ++y)
        wall.nodes.push_back(Coord{2, y});
    m.claim(wall, 7);
    // Owner 7 may route through its own wall.
    auto p = adaptiveRoute(m, Coord{0, 0}, Coord{4, 0}, 7);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->hops(), 4);
}

TEST(AdaptiveRoute, BusyEndpointFails)
{
    Mesh m(4, 4);
    Path spot;
    spot.nodes.push_back(Coord{3, 3});
    m.claim(spot, 9);
    EXPECT_FALSE(
        adaptiveRoute(m, Coord{0, 0}, Coord{3, 3}, 1).has_value());
    EXPECT_FALSE(
        adaptiveRoute(m, Coord{3, 3}, Coord{0, 0}, 1).has_value());
}

TEST(AdaptiveRoute, SameEndpointTrivial)
{
    Mesh m(3, 3);
    auto p = adaptiveRoute(m, Coord{1, 1}, Coord{1, 1}, 1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->hops(), 0);
}

TEST(AdaptiveRoute, OutsideMeshIsFatal)
{
    Mesh m(3, 3);
    EXPECT_THROW(adaptiveRoute(m, Coord{0, 0}, Coord{5, 5}, 1),
                 qsurf::FatalError);
}

TEST(AdaptiveRoute, ReusedScratchMatchesFreshScratch)
{
    Mesh m(6, 6);
    Path wall;
    for (int y = 0; y <= 3; ++y)
        wall.nodes.push_back(Coord{3, y});
    m.claim(wall, 7);

    // One scratch across many searches (the claimers' usage) must
    // reproduce the one-shot overload exactly, node for node.
    BfsScratch scratch;
    for (int trial = 0; trial < 50; ++trial) {
        for (const Coord &dst :
             {Coord{5, 0}, Coord{5, 5}, Coord{0, 5}}) {
            auto reused =
                adaptiveRoute(m, Coord{0, 0}, dst, 1, scratch);
            auto fresh = adaptiveRoute(m, Coord{0, 0}, dst, 1);
            ASSERT_EQ(reused.has_value(), fresh.has_value());
            if (reused) {
                EXPECT_TRUE(reused->nodes == fresh->nodes);
            }
        }
    }
}

TEST(AdaptiveRoute, ScratchSurvivesMeshSizeChange)
{
    BfsScratch scratch;
    Mesh small(3, 3);
    EXPECT_TRUE(adaptiveRoute(small, Coord{0, 0}, Coord{2, 2}, 1,
                              scratch)
                    .has_value());
    Mesh big(9, 9);
    auto p =
        adaptiveRoute(big, Coord{0, 0}, Coord{8, 8}, 1, scratch);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->hops(), 16);
}

} // namespace
} // namespace qsurf::network
