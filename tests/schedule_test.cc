/**
 * @file
 * Unit tests for levelized scheduling: ASAP/ALAP correctness, slack,
 * criticality heights and the ideal-parallelism profile of Table 2.
 */

#include <gtest/gtest.h>

#include "circuit/schedule.h"

namespace qsurf::circuit {
namespace {

Circuit
diamond()
{
    // 0: CNOT(0,1); then H(0) and H(1) in parallel; then CNOT(0,1).
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1);
    c.addGate(GateKind::H, 0);
    c.addGate(GateKind::H, 1);
    c.addGate(GateKind::CNOT, 0, 1);
    return c;
}

TEST(Levelize, AsapLevelsOfDiamond)
{
    Circuit c = diamond();
    Dag dag(c);
    LevelSchedule s = levelize(dag);
    EXPECT_EQ(s.depth, 3);
    EXPECT_EQ(s.asap, (std::vector<int>{0, 1, 1, 2}));
}

TEST(Levelize, AlapEqualsAsapOnCriticalDiamond)
{
    Circuit c = diamond();
    Dag dag(c);
    LevelSchedule s = levelize(dag);
    // Every node of the diamond is on a critical path.
    for (int i = 0; i < dag.size(); ++i)
        EXPECT_EQ(s.slack(i), 0) << "gate " << i;
}

TEST(Levelize, SlackOfSideChain)
{
    Circuit c(3);
    c.addGate(GateKind::H, 0);       // 0: long chain
    c.addGate(GateKind::H, 0);       // 1
    c.addGate(GateKind::H, 0);       // 2
    c.addGate(GateKind::X, 1);       // 3: independent single gate
    Dag dag(c);
    LevelSchedule s = levelize(dag);
    EXPECT_EQ(s.depth, 3);
    EXPECT_EQ(s.asap[3], 0);
    EXPECT_EQ(s.alap[3], 2);
    EXPECT_EQ(s.slack(3), 2);
}

TEST(Criticality, HeightsDecreaseAlongChain)
{
    Circuit c(1);
    for (int i = 0; i < 5; ++i)
        c.addGate(GateKind::H, 0);
    Dag dag(c);
    std::vector<int> h = criticality(dag);
    EXPECT_EQ(h, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(Criticality, ForkTakesLongestArm)
{
    Circuit c(2);
    c.addGate(GateKind::CNOT, 0, 1); // 0
    c.addGate(GateKind::H, 0);       // 1: short arm
    c.addGate(GateKind::H, 1);       // 2: long arm...
    c.addGate(GateKind::H, 1);       // 3
    Dag dag(c);
    std::vector<int> h = criticality(dag);
    EXPECT_EQ(h[0], 2); // through gates 2, 3.
    EXPECT_EQ(h[1], 0);
    EXPECT_EQ(h[2], 1);
}

TEST(Parallelism, SerialChainFactorIsOne)
{
    Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.addGate(GateKind::H, 0);
    ParallelismProfile p = parallelismProfile(c);
    EXPECT_EQ(p.depth, 10);
    EXPECT_DOUBLE_EQ(p.factor, 1.0);
}

TEST(Parallelism, FullyParallelFactorIsWidth)
{
    Circuit c(8);
    for (int q = 0; q < 8; ++q)
        c.addGate(GateKind::H, q);
    ParallelismProfile p = parallelismProfile(c);
    EXPECT_EQ(p.depth, 1);
    EXPECT_DOUBLE_EQ(p.factor, 8.0);
    EXPECT_EQ(p.gates_per_level, std::vector<int>{8});
}

TEST(Parallelism, GatesPerLevelSumsToTotal)
{
    Circuit c = diamond();
    ParallelismProfile p = parallelismProfile(c);
    int sum = 0;
    for (int g : p.gates_per_level)
        sum += g;
    EXPECT_EQ(sum, c.size());
    EXPECT_EQ(p.total_gates, static_cast<uint64_t>(c.size()));
}

} // namespace
} // namespace qsurf::circuit
