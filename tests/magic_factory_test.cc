/**
 * @file
 * Magic-state throughput tests (Section 4.3): when distillation is
 * rate-limited, T-heavy programs stall on factory supply; sizing the
 * factories off the critical path removes the stalls.
 */

#include <gtest/gtest.h>

#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "common/logging.h"
#include "surgery/chain_scheduler.h"

namespace qsurf::braid {
namespace {

using circuit::Circuit;
using circuit::GateKind;

/** T-heavy parallel workload: independent T chains on many qubits. */
Circuit
tHeavy(int qubits, int depth)
{
    Circuit c("t-heavy", qubits);
    for (int i = 0; i < depth; ++i)
        for (int q = 0; q < qubits; ++q)
            c.addGate(i % 2 ? GateKind::T : GateKind::Tdag, q);
    return c;
}

BraidOptions
withProduction(int cycles_per_state)
{
    BraidOptions opts;
    opts.code_distance = 3;
    opts.magic_production_cycles = cycles_per_state;
    return opts;
}

TEST(MagicFactory, UnlimitedProductionNeverStarves)
{
    Circuit c = tHeavy(16, 6);
    BraidOptions opts;
    opts.code_distance = 3;
    BraidResult r = scheduleBraids(c, Policy::Combined, opts);
    EXPECT_EQ(r.magic_starvations, 0u);
}

TEST(MagicFactory, SlowProductionStallsTGates)
{
    Circuit c = tHeavy(16, 6);
    BraidResult r =
        scheduleBraids(c, Policy::Combined, withProduction(200));
    EXPECT_GT(r.magic_starvations, 0u)
        << "200-cycle distillation must starve a T-heavy program";
}

TEST(MagicFactory, ProductionRateBoundsSchedule)
{
    Circuit c = tHeavy(12, 4);
    BraidResult fast =
        scheduleBraids(c, Policy::Combined, withProduction(1));
    BraidResult slow =
        scheduleBraids(c, Policy::Combined, withProduction(400));
    EXPECT_GT(slow.schedule_cycles, fast.schedule_cycles * 2)
        << "distillation throughput must dominate a T-bound app";
}

TEST(MagicFactory, SupplyConstrainedScheduleStillCompletes)
{
    Circuit c = tHeavy(8, 3);
    BraidResult r =
        scheduleBraids(c, Policy::Combined, withProduction(500));
    EXPECT_EQ(r.braids_placed, static_cast<uint64_t>(c.size()));
}

TEST(MagicFactory, BufferCapacitySmoothsBursts)
{
    Circuit c = tHeavy(16, 4);
    BraidOptions small = withProduction(60);
    small.magic_buffer_capacity = 1;
    BraidOptions big = withProduction(60);
    big.magic_buffer_capacity = 8;
    BraidResult rs = scheduleBraids(c, Policy::Combined, small);
    BraidResult rb = scheduleBraids(c, Policy::Combined, big);
    EXPECT_LE(rb.schedule_cycles, rs.schedule_cycles)
        << "deeper buffers can only help bursty demand";
}

TEST(MagicFactory, CliffordProgramsUnaffected)
{
    Circuit c(8);
    for (int i = 0; i < 20; ++i)
        c.addGate(GateKind::CNOT, static_cast<int32_t>(i % 7),
                  static_cast<int32_t>(7));
    BraidResult limited =
        scheduleBraids(c, Policy::Combined, withProduction(1000));
    BraidOptions unlimited;
    unlimited.code_distance = 3;
    BraidResult free_run =
        scheduleBraids(c, Policy::Combined, unlimited);
    EXPECT_EQ(limited.schedule_cycles, free_run.schedule_cycles);
    EXPECT_EQ(limited.magic_starvations, 0u);
}

TEST(MagicFactory, ProgramOrderPolicyAlsoHonorsSupply)
{
    Circuit c = tHeavy(6, 3);
    BraidResult r =
        scheduleBraids(c, Policy::ProgramOrder, withProduction(300));
    EXPECT_EQ(r.braids_placed, static_cast<uint64_t>(c.size()));
    EXPECT_GT(r.magic_starvations, 0u);
}

/**
 * The lattice-surgery side of the same model: factory patches used
 * to be always stocked, so a T-heavy program never waited on
 * distillation.  The shared engine::MagicFactoryPool now gates
 * T-gate merges on supply.
 */
surgery::SurgeryOptions
surgeryProduction(int cycles_per_state)
{
    surgery::SurgeryOptions opts;
    opts.code_distance = 3;
    opts.magic_production_cycles = cycles_per_state;
    return opts;
}

TEST(MagicFactorySurgery, UnlimitedProductionNeverStarves)
{
    Circuit c = tHeavy(16, 6);
    surgery::SurgeryOptions opts;
    opts.code_distance = 3;
    surgery::SurgeryResult r = surgery::scheduleSurgery(c, opts);
    EXPECT_EQ(r.magic_starvations, 0u);
}

TEST(MagicFactorySurgery, SlowProductionStallsTGates)
{
    Circuit c = tHeavy(16, 6);
    surgery::SurgeryResult r =
        surgery::scheduleSurgery(c, surgeryProduction(200));
    EXPECT_GT(r.magic_starvations, 0u)
        << "200-cycle distillation must starve a T-heavy program";
    EXPECT_EQ(r.chains_placed, static_cast<uint64_t>(c.size()));
}

TEST(MagicFactorySurgery, ProductionRateBoundsSchedule)
{
    Circuit c = tHeavy(12, 4);
    surgery::SurgeryResult fast =
        surgery::scheduleSurgery(c, surgeryProduction(1));
    surgery::SurgeryResult slow =
        surgery::scheduleSurgery(c, surgeryProduction(400));
    EXPECT_GT(slow.schedule_cycles, fast.schedule_cycles * 2)
        << "distillation throughput must dominate a T-bound app";
}

TEST(MagicFactorySurgery, CliffordProgramsUnaffected)
{
    Circuit c(8);
    for (int i = 0; i < 20; ++i)
        c.addGate(GateKind::CNOT, static_cast<int32_t>(i % 7),
                  static_cast<int32_t>(7));
    surgery::SurgeryResult limited =
        surgery::scheduleSurgery(c, surgeryProduction(1000));
    surgery::SurgeryOptions unlimited;
    unlimited.code_distance = 3;
    surgery::SurgeryResult free_run =
        surgery::scheduleSurgery(c, unlimited);
    EXPECT_EQ(limited.schedule_cycles, free_run.schedule_cycles);
    EXPECT_EQ(limited.magic_starvations, 0u);
}

} // namespace
} // namespace qsurf::braid
