/**
 * @file
 * JSON writer tests (nesting, comma placement, escaping, number
 * round-tripping, misuse panics) and parser tests (round-trips
 * through the writer, escapes, \uXXXX decoding, error reporting
 * with line/column positions).
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace qsurf {
namespace {

TEST(Json, FlatObject)
{
    std::ostringstream os;
    {
        JsonWriter j(os);
        j.beginObject();
        j.field("name", "fig6");
        j.field("points", 28);
        j.field("ok", true);
        j.endObject();
    }
    EXPECT_EQ(os.str(), "{\n  \"name\": \"fig6\",\n"
                        "  \"points\": 28,\n  \"ok\": true\n}");
}

TEST(Json, NestedArraysAndObjects)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("rows");
    j.beginArray();
    j.beginObject();
    j.field("x", 1);
    j.endObject();
    j.beginObject();
    j.field("x", 2);
    j.endObject();
    j.endArray();
    j.endObject();
    EXPECT_EQ(os.str(), "{\n  \"rows\": [\n    {\n      \"x\": 1\n"
                        "    },\n    {\n      \"x\": 2\n    }\n"
                        "  ]\n}");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonWriter::quote("a\"b\\c\nd\te"),
              "\"a\\\"b\\\\c\\nd\\te\"");
    EXPECT_EQ(JsonWriter::quote(std::string(1, '\x01')),
              "\"\\u0001\"");
}

TEST(Json, NumbersRoundTrip)
{
    for (double v : {0.0, 1.0, -2.5, 0.1, 1e24, 1e-24,
                     0.30000000000000004, 3.141592653589793}) {
        std::string s = JsonWriter::number(v);
        double parsed = std::stod(s);
        EXPECT_EQ(parsed, v) << s;
    }
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(JsonWriter::number(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonWriter::number(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(Json, MismatchedNestingPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    EXPECT_THROW(j.endArray(), PanicError);
    j.endObject();
}

TEST(Json, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray();
    EXPECT_THROW(j.key("x"), PanicError);
    j.endArray();
}

TEST(JsonParser, Values)
{
    JsonValue v = parseJson(
        " {\"s\": \"hi\", \"n\": -2.5, \"t\": true, \"f\": false,"
        " \"z\": null, \"a\": [1, 2, 3], \"o\": {\"k\": 1e2}} ");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members.size(), 7u);
    EXPECT_EQ(v.find("s")->str, "hi");
    EXPECT_DOUBLE_EQ(v.find("n")->num, -2.5);
    EXPECT_TRUE(v.find("t")->boolean);
    EXPECT_TRUE(v.find("t")->isBool());
    EXPECT_FALSE(v.find("f")->boolean);
    EXPECT_TRUE(v.find("z")->isNull());
    ASSERT_TRUE(v.find("a")->isArray());
    ASSERT_EQ(v.find("a")->items.size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("a")->items[2].num, 3.0);
    EXPECT_DOUBLE_EQ(v.find("o")->find("k")->num, 100.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, EmptyContainers)
{
    EXPECT_TRUE(parseJson("{}").isObject());
    EXPECT_TRUE(parseJson("{}").members.empty());
    EXPECT_TRUE(parseJson("[]").isArray());
    EXPECT_TRUE(parseJson("[]").items.empty());
}

TEST(JsonParser, DuplicateKeysLastWins)
{
    JsonValue v = parseJson("{\"k\": 1, \"k\": 2}");
    EXPECT_DOUBLE_EQ(v.find("k")->num, 2.0);
}

TEST(JsonParser, Escapes)
{
    JsonValue v =
        parseJson("\"a\\\"b\\\\c\\nd\\te\\u0041\\u00e9\\u20ac\"");
    // é and € UTF-8 encode to 2 and 3 bytes.
    EXPECT_EQ(v.str,
              "a\"b\\c\nd\teA\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParser, WriterOutputRoundTrips)
{
    std::ostringstream os;
    {
        JsonWriter j(os);
        j.beginObject();
        j.field("name", "tricky \"quotes\"\n");
        j.field("x", 0.30000000000000004);
        j.key("rows");
        j.beginArray();
        j.value(int64_t{-7});
        j.value(true);
        j.null();
        j.endArray();
        j.endObject();
    }
    JsonValue v = parseJson(os.str());
    EXPECT_EQ(v.find("name")->str, "tricky \"quotes\"\n");
    EXPECT_DOUBLE_EQ(v.find("x")->num, 0.30000000000000004);
    const JsonValue *rows = v.find("rows");
    ASSERT_TRUE(rows && rows->isArray());
    ASSERT_EQ(rows->items.size(), 3u);
    EXPECT_DOUBLE_EQ(rows->items[0].num, -7.0);
    EXPECT_TRUE(rows->items[1].boolean);
    EXPECT_TRUE(rows->items[2].isNull());
}

TEST(JsonParser, ErrorsThrowWithPosition)
{
    for (const char *bad :
         {"", "{", "[1, 2", "{\"a\" 1}", "{\"a\": }", "tru",
          "\"unterminated", "\"bad \\q escape\"", "1.2.3",
          "[1] trailing", "{\"a\": 1,}"}) {
        EXPECT_THROW(parseJson(bad), FatalError) << bad;
    }
    try {
        parseJson("{\n  \"a\": flse\n}");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace qsurf
