/**
 * @file
 * JSON writer tests: nesting, comma placement, escaping, number
 * round-tripping and misuse panics.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace qsurf {
namespace {

TEST(Json, FlatObject)
{
    std::ostringstream os;
    {
        JsonWriter j(os);
        j.beginObject();
        j.field("name", "fig6");
        j.field("points", 28);
        j.field("ok", true);
        j.endObject();
    }
    EXPECT_EQ(os.str(), "{\n  \"name\": \"fig6\",\n"
                        "  \"points\": 28,\n  \"ok\": true\n}");
}

TEST(Json, NestedArraysAndObjects)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.key("rows");
    j.beginArray();
    j.beginObject();
    j.field("x", 1);
    j.endObject();
    j.beginObject();
    j.field("x", 2);
    j.endObject();
    j.endArray();
    j.endObject();
    EXPECT_EQ(os.str(), "{\n  \"rows\": [\n    {\n      \"x\": 1\n"
                        "    },\n    {\n      \"x\": 2\n    }\n"
                        "  ]\n}");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonWriter::quote("a\"b\\c\nd\te"),
              "\"a\\\"b\\\\c\\nd\\te\"");
    EXPECT_EQ(JsonWriter::quote(std::string(1, '\x01')),
              "\"\\u0001\"");
}

TEST(Json, NumbersRoundTrip)
{
    for (double v : {0.0, 1.0, -2.5, 0.1, 1e24, 1e-24,
                     0.30000000000000004, 3.141592653589793}) {
        std::string s = JsonWriter::number(v);
        double parsed = std::stod(s);
        EXPECT_EQ(parsed, v) << s;
    }
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(JsonWriter::number(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonWriter::number(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(Json, MismatchedNestingPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    EXPECT_THROW(j.endArray(), PanicError);
    j.endObject();
}

TEST(Json, KeyOutsideObjectPanics)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray();
    EXPECT_THROW(j.key("x"), PanicError);
    j.endArray();
}

} // namespace
} // namespace qsurf
