/**
 * @file
 * Generative cross-backend harness: seeded random Clifford+T
 * circuits crossed with stress scenarios (tight escalation
 * timeouts, magic-state factory starvation, a small mesh), run
 * through every registered backend and checked against the
 * invariants all of them must share:
 *
 *  - sweep results are bit-identical at 1, 2 and 8 worker threads;
 *  - the event-driven fast-forward produces exactly the stepped
 *    loop's results, scenario by scenario;
 *  - schedule length is monotone non-decreasing in code distance;
 *  - the hybrid backend's arbitration never loses to the worst
 *    single-scheme commitment, and on cost-model-favorable points
 *    stays within slack of the best of pure braid and pure surgery.
 *
 * Unlike tests/golden_test.cc (exact pinned values on one grid),
 * this suite generates its inputs, so it reaches configurations no
 * fixed table covers; any new backend registered in the engine is
 * picked up automatically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "circuit/circuit.h"
#include "common/rng.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "hybrid/arbiter.h"

namespace qsurf::engine {
namespace {

/** A seeded random Clifford+T circuit (already decomposed). */
circuit::Circuit
randomCircuit(uint64_t seed, int qubits, int gates)
{
    Rng rng(seed);
    circuit::Circuit c("random-" + std::to_string(seed), qubits);
    for (int g = 0; g < gates; ++g) {
        auto a = static_cast<int32_t>(rng.below(
            static_cast<uint64_t>(qubits)));
        uint64_t roll = rng.below(10);
        if (roll < 5 && qubits > 1) {
            auto b = static_cast<int32_t>(rng.below(
                static_cast<uint64_t>(qubits - 1)));
            if (b >= a)
                ++b;
            c.addGate(circuit::GateKind::CNOT, a, b);
        } else if (roll < 7) {
            c.addGate(roll == 5 ? circuit::GateKind::T
                                : circuit::GateKind::Tdag,
                      a);
        } else {
            c.addGate(roll == 7   ? circuit::GateKind::H
                          : roll == 8 ? circuit::GateKind::S
                                      : circuit::GateKind::X,
                      a);
        }
    }
    return c;
}

/** One stress scenario: a named RunConfig mutation. */
struct Scenario
{
    const char *name;
    int qubits;
    int gates;
    void (*apply)(RunConfig &);
};

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> table = {
        {"baseline", 10, 60, [](RunConfig &) {}},
        {"tight-timeouts", 10, 60,
         [](RunConfig &c) {
             c.adapt_timeout = 2;
             c.bfs_timeout = 3;
             c.drop_timeout = 5;
         }},
        {"factory-starvation", 10, 60,
         [](RunConfig &c) {
             c.magic_production_cycles = 60;
             c.magic_buffer_capacity = 1;
         }},
        {"small-mesh", 4, 40, [](RunConfig &) {}},
    };
    return table;
}

/** Registered backends that simulate a circuit (vs analytic). */
std::vector<std::string>
simulatedBackends()
{
    std::vector<std::string> out;
    for (const std::string &name : Registry::global().names())
        if (Registry::global().get(name).needsCircuit())
            out.push_back(name);
    return out;
}

WorkItem
itemFor(const circuit::Circuit *circ, const Scenario &s, int d)
{
    WorkItem item;
    item.app = apps::AppKind::SQ;
    item.app_name = circ->name();
    item.circuit = circ;
    item.config.code_distance = d;
    item.config.seed = 99;
    s.apply(item.config);
    return item;
}

/** All extras except the wall-clock-ish fast-forward diagnostics. */
std::vector<std::pair<std::string, double>>
comparableExtras(const Metrics &m)
{
    std::vector<std::pair<std::string, double>> out;
    for (const auto &e : m.extras)
        if (e.first.rfind("ff_", 0) != 0)
            out.push_back(e);
    return out;
}

/** Run @p grid at 1/2/8 threads; all runs must agree field for
 *  field. */
void
expectThreadCountInvariant(const SweepGrid &grid)
{
    std::vector<std::vector<SweepPoint>> runs;
    for (int threads : {1, 2, 8}) {
        SweepOptions opts;
        opts.num_threads = threads;
        runs.push_back(SweepDriver().run(grid, opts));
    }
    ASSERT_EQ(runs[0].size(), grid.points());
    for (size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (size_t i = 0; i < runs[0].size(); ++i) {
            const Metrics &a = runs[0][i].metrics;
            const Metrics &b = runs[r][i].metrics;
            std::string what = runs[0][i].backend + " / "
                + runs[0][i].app_name + " / arbiter "
                + std::to_string(runs[0][i].arbiter);
            EXPECT_EQ(a.schedule_cycles, b.schedule_cycles) << what;
            EXPECT_EQ(a.critical_path_cycles,
                      b.critical_path_cycles)
                << what;
            EXPECT_EQ(a.extras, b.extras) << what;
        }
    }
}

TEST(CrossBackend, SweepThreadCountsAreBitIdentical)
{
    // Every registered backend (simulated and analytic) over a
    // two-app grid; only the hybrid backend reads the arbiter
    // axis, so the second arbiter sweeps a hybrid-only sub-grid.
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::SHA1, {8, 1}, ""}};
    grid.backends = Registry::global().names();
    grid.policies = {6};
    grid.distances = {5};
    grid.sizes = {1e6};
    grid.base.seed = 4321;
    expectThreadCountInvariant(grid);

    grid.backends = {backends::hybrid_mixed};
    grid.arbiters = {1};
    expectThreadCountInvariant(grid);
}

TEST(CrossBackend, LayoutObjectiveSweepIsBitIdentical)
{
    // The bench/layout_objectives grid shape: the layout-objective
    // axis over the surgery and hybrid backends, which both rebuild
    // the patch machine per point (bisection + corridor refinement
    // + lane geometry) — all of it must stay deterministic across
    // sweep thread counts.
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::IsingFull, {10, 2}, ""}};
    grid.backends = {backends::surgery_sim, backends::hybrid_mixed};
    grid.policies = {6};
    grid.layout_objectives = {0, 1, 2};
    grid.distances = {3, 5};
    grid.base.lane_spacing = 2;
    grid.base.seed = 1234;
    expectThreadCountInvariant(grid);
}

TEST(CrossBackend, DefectAxisSweepIsBitIdentical)
{
    // The bench/yield grid shape: the defect-density axis over the
    // three simulated-communication backends.  Damage generation,
    // masked layout, defect-aware routing and the arbiter surcharge
    // all run per point and must stay deterministic across sweep
    // thread counts; the density-0 rows must also match a grid
    // without the axis byte for byte.
    SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""}};
    grid.backends = {backends::double_defect, backends::surgery_sim,
                     backends::hybrid_mixed};
    grid.policies = {6};
    grid.distances = {3};
    grid.defects = {0, 0.05, 0.1};
    grid.base.seed = 1234;
    grid.base.defect_seed = 7;
    expectThreadCountInvariant(grid);

    SweepGrid control = grid;
    control.defects = {0};
    SweepOptions opts;
    opts.num_threads = 1;
    auto with_axis = SweepDriver().run(grid, opts);
    auto without = SweepDriver().run(control, opts);
    std::vector<SweepPoint> zero;
    for (const SweepPoint &p : with_axis)
        if (p.defect == 0)
            zero.push_back(p);
    EXPECT_EQ(canonicalSweepRows(zero), canonicalSweepRows(without))
        << "density-0 rows differ from the no-defect-axis grid";
}

TEST(CrossBackend, FastForwardMatchesSteppedEverywhere)
{
    Registry &registry = Registry::global();
    for (uint64_t seed : {1u, 7u}) {
        for (const Scenario &s : scenarios()) {
            circuit::Circuit circ =
                randomCircuit(seed, s.qubits, s.gates);
            for (const std::string &name : simulatedBackends()) {
                const Backend &b = registry.get(name);
                WorkItem item = itemFor(&circ, s, 5);
                item.config.fast_forward = false;
                Metrics stepped = b.run(item);
                item.config.fast_forward = true;
                Metrics ff = b.run(item);

                std::string what = name + " / " + s.name
                    + " / seed " + std::to_string(seed);
                EXPECT_EQ(ff.schedule_cycles,
                          stepped.schedule_cycles)
                    << what;
                EXPECT_EQ(ff.critical_path_cycles,
                          stepped.critical_path_cycles)
                    << what;
                EXPECT_EQ(comparableExtras(ff),
                          comparableExtras(stepped))
                    << what;
            }
        }
    }
}

TEST(CrossBackend, ScheduleCyclesMonotoneInCodeDistance)
{
    // A longer code distance can only lengthen every op and every
    // corridor hold, so no backend may get faster with larger d.
    Registry &registry = Registry::global();
    for (uint64_t seed : {3u, 11u}) {
        for (const Scenario &s : scenarios()) {
            circuit::Circuit circ =
                randomCircuit(seed, s.qubits, s.gates);
            for (const std::string &name : simulatedBackends()) {
                const Backend &b = registry.get(name);
                uint64_t prev = 0;
                for (int d : {3, 5, 7}) {
                    WorkItem item = itemFor(&circ, s, d);
                    uint64_t cycles = b.run(item).schedule_cycles;
                    EXPECT_GE(cycles, prev)
                        << name << " / " << s.name << " / seed "
                        << seed << " / d " << d;
                    prev = cycles;
                }
            }
        }
    }
}

TEST(CrossBackend, HybridArbitrationBeatsWorstAndTracksBestPure)
{
    Registry &registry = Registry::global();
    const Backend &hybrid =
        registry.get(backends::hybrid_mixed);
    const Backend &dd = registry.get(backends::double_defect);
    const Backend &surgery = registry.get(backends::surgery_sim);

    // Cost-model-favorable points: the baseline scenario, where no
    // artificial starvation or timeout squeeze distorts the costs
    // the arbiter prices with.
    const Scenario &s = scenarios().front();
    for (uint64_t seed : {5u, 17u, 23u}) {
        circuit::Circuit circ =
            randomCircuit(seed, s.qubits, s.gates);
        std::string what = "seed " + std::to_string(seed);

        WorkItem item = itemFor(&circ, s, 5);
        item.config.hybrid_arbiter =
            static_cast<int>(hybrid::ArbiterKind::CostGreedy);
        uint64_t greedy = hybrid.run(item).schedule_cycles;

        // Never worse than the worst single-scheme commitment on
        // the same machine.
        uint64_t worst_forced = 0;
        for (auto kind : {hybrid::ArbiterKind::ForceBraid,
                          hybrid::ArbiterKind::ForceTeleport,
                          hybrid::ArbiterKind::ForceSurgery}) {
            item.config.hybrid_arbiter = static_cast<int>(kind);
            worst_forced = std::max(
                worst_forced, hybrid.run(item).schedule_cycles);
        }
        EXPECT_LE(greedy, worst_forced) << what;

        // Within slack of the best of the pure braid and pure
        // surgery backends: arbitration may not squander the
        // paper's per-link cost asymmetry.
        uint64_t pure_braid = dd.run(item).schedule_cycles;
        uint64_t pure_surgery = surgery.run(item).schedule_cycles;
        auto best_pure = static_cast<double>(
            std::min(pure_braid, pure_surgery));
        EXPECT_LE(static_cast<double>(greedy),
                  1.2 * best_pure + 16.0)
            << what << ": greedy " << greedy << " vs pure braid "
            << pure_braid << " / pure surgery " << pure_surgery;
    }
}

} // namespace
} // namespace qsurf::engine
