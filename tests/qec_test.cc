/**
 * @file
 * Tests of the QEC math: code-distance selection against the
 * logical/physical error gap (Section 2.2), tile footprints
 * (Section 2.3.1) and factory allocation (Section 4.3).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "qec/code.h"
#include "qec/factory.h"
#include "qec/technology.h"

namespace qsurf::qec {
namespace {

TEST(CodeModel, LogicalErrorDecreasesWithDistance)
{
    double prev = 1;
    for (int d = 3; d <= 21; d += 2) {
        double pl = CodeModel::logicalErrorPerOp(1e-4, d);
        EXPECT_LT(pl, prev);
        prev = pl;
    }
}

TEST(CodeModel, LogicalErrorIncreasesWithPhysicalError)
{
    EXPECT_LT(CodeModel::logicalErrorPerOp(1e-6, 5),
              CodeModel::logicalErrorPerOp(1e-4, 5));
}

TEST(CodeModel, ChosenDistanceMeetsTarget)
{
    for (double p : {1e-3, 1e-5, 1e-8})
        for (double kq : {1e2, 1e6, 1e12, 1e18}) {
            int d = CodeModel::chooseDistance(p, kq);
            EXPECT_GE(d, CodeModel::min_distance);
            EXPECT_EQ(d % 2, 1) << "distance must be odd";
            EXPECT_LE(CodeModel::logicalErrorPerOp(p, d),
                      CodeModel::targetLogicalError(kq));
            // Minimality: two less would not suffice (unless at min).
            if (d > CodeModel::min_distance)
                EXPECT_GT(CodeModel::logicalErrorPerOp(p, d - 2),
                          CodeModel::targetLogicalError(kq));
        }
}

TEST(CodeModel, DistanceMonotoneInComputationSize)
{
    int prev = 0;
    for (double kq = 1e2; kq <= 1e20; kq *= 100) {
        int d = CodeModel::chooseDistance(1e-4, kq);
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST(CodeModel, DistanceMonotoneInPhysicalError)
{
    EXPECT_LE(CodeModel::chooseDistance(1e-8, 1e10),
              CodeModel::chooseDistance(1e-4, 1e10));
}

TEST(CodeModel, AboveThresholdIsFatal)
{
    EXPECT_THROW(CodeModel::chooseDistance(1e-2, 100),
                 qsurf::FatalError);
    EXPECT_THROW(CodeModel::chooseDistance(0.5, 100),
                 qsurf::FatalError);
}

TEST(CodeModel, TargetHalvesOverOps)
{
    EXPECT_DOUBLE_EQ(CodeModel::targetLogicalError(1e12),
                     0.5e-12);
}

TEST(Tiles, PlanarFootprint)
{
    EXPECT_EQ(planarTileQubits(3), 25u);   // (2*3-1)^2
    EXPECT_EQ(planarTileQubits(5), 81u);
}

TEST(Tiles, DoubleDefectIsTwicePlanar)
{
    for (int d = 3; d <= 15; d += 2)
        EXPECT_EQ(doubleDefectTileQubits(d), 2 * planarTileQubits(d));
}

TEST(Tiles, DispatchMatchesKind)
{
    EXPECT_EQ(tileQubits(CodeKind::Planar, 5), planarTileQubits(5));
    EXPECT_EQ(tileQubits(CodeKind::DoubleDefect, 5),
              doubleDefectTileQubits(5));
}

TEST(Tiles, PlanarSpaceOverheadExceedsDoubleDefect)
{
    // Planar pays for EPR factories, buffers and swap channels.
    EXPECT_GT(spaceOverheadFactor(CodeKind::Planar),
              spaceOverheadFactor(CodeKind::DoubleDefect));
    EXPECT_GE(spaceOverheadFactor(CodeKind::DoubleDefect), 1.0);
}

TEST(Technology, CycleTimeComposition)
{
    Technology t;
    // 4 x 100ns 2q + 2 x 10ns 1q + 100ns measure = 520ns.
    EXPECT_DOUBLE_EQ(t.surfaceCycleNs(), 520.0);
    EXPECT_DOUBLE_EQ(t.tSingleQubitNs(), 10.0);
}

TEST(Technology, SwapHopScalesWithDistance)
{
    Technology t;
    EXPECT_GT(t.swapHopCycles(9), t.swapHopCycles(3));
    EXPECT_NEAR(t.swapHopCycles(5), 2.0 * 5 * 300.0 / 520.0, 1e-9);
}

TEST(Technology, NamedDesignPoints)
{
    EXPECT_DOUBLE_EQ(tech_points::current().p_physical, 1e-3);
    EXPECT_DOUBLE_EQ(tech_points::futureOptimistic().p_physical, 1e-8);
}

TEST(Technology, CheckRejectsNonsense)
{
    Technology t;
    t.p_physical = 0;
    EXPECT_THROW(t.check(), qsurf::FatalError);
    t = Technology{};
    t.t_two_qubit_ns = -1;
    EXPECT_THROW(t.check(), qsurf::FatalError);
}

TEST(Factory, AllocationScalesWithData)
{
    FactoryAllocation small = allocateFactories(8, false);
    FactoryAllocation large = allocateFactories(800, false);
    EXPECT_GE(small.magic_factories, 1);
    EXPECT_GT(large.magic_factories, small.magic_factories);
    EXPECT_EQ(small.epr_factories, 0);
}

TEST(Factory, PlanarGetsEprFactories)
{
    FactoryAllocation a = allocateFactories(400, true);
    EXPECT_GE(a.magic_factories, 1);
    EXPECT_GE(a.epr_factories, 1);
    EXPECT_GT(a.total_tiles, 0);
}

TEST(Factory, RatesArePositive)
{
    FactoryAllocation a = allocateFactories(100, true);
    EXPECT_GT(a.magicRate(), 0);
    EXPECT_GT(a.eprRate(), 0);
}

TEST(Factory, RejectsZeroDataTiles)
{
    EXPECT_THROW(allocateFactories(0, true), qsurf::FatalError);
}

} // namespace
} // namespace qsurf::qec
