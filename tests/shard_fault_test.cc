/**
 * @file
 * Fault-tolerance tests of the sharded sweep fleet: a worker
 * SIGKILLed mid-sweep must cost wall clock, never rows — the merged
 * results stay byte-identical to a single-process run whether the
 * orphaned slice lands on a respawned worker or a survivor, and the
 * same holds when workers are remote TCP processes instead of forked
 * locals.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "apps/apps.h"
#include "common/logging.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "service/shard.h"
#include "service/wire.h"

namespace qsurf {
namespace {

namespace wire = service::wire;

/** A grid big enough that killing a worker mid-slice leaves points
 *  to reassign, small enough for a unit test: 2 apps x 3 distances
 *  x 2 objectives = 12 points. */
engine::SweepGrid
faultGrid()
{
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::GSE, {8, 2}, ""}};
    grid.backends = {engine::backends::surgery_sim};
    grid.distances = {3, 5, 7};
    grid.layout_objectives = {0, 2};
    grid.base.seed = 21;
    return grid;
}

std::string
singleProcessRows(const engine::SweepGrid &grid)
{
    engine::SweepOptions opts;
    opts.num_threads = 1;
    return engine::canonicalSweepRows(
        engine::SweepDriver().run(grid, opts));
}

TEST(ShardFault, KilledWorkerIsRespawnedAndRowsStayIdentical)
{
    setQuiet(true);
    engine::SweepGrid grid = faultGrid();
    std::string expected = singleProcessRows(grid);

    service::FleetStats stats;
    service::ShardOptions shard;
    shard.workers = 1;
    shard.sweep.num_threads = 1;
    shard.idle_timeout_sec = 120;
    shard.stats = &stats;
    // SIGKILL the only worker right after its second row lands: no
    // survivor exists, so recovery must fork a replacement.
    shard.fault_kill_worker = 0;
    shard.fault_kill_after_rows = 2;

    std::vector<engine::SweepPoint> merged =
        service::runShardedSweep(grid, shard);
    EXPECT_EQ(engine::canonicalSweepRows(merged), expected);
    EXPECT_TRUE(stats.degraded);
    EXPECT_GE(stats.worker_failures, 1u);
    EXPECT_EQ(stats.worker_restarts, 1u);
    EXPECT_GE(stats.points_reassigned, 1u);
    EXPECT_GE(stats.reassignments, 1u);
}

TEST(ShardFault, TwoWorkerFleetSurvivesAKillEitherWay)
{
    setQuiet(true);
    engine::SweepGrid grid = faultGrid();
    std::string expected = singleProcessRows(grid);

    service::FleetStats stats;
    service::ShardOptions shard;
    shard.workers = 2;
    shard.sweep.num_threads = 1;
    shard.idle_timeout_sec = 120;
    shard.stats = &stats;
    shard.fault_kill_worker = 1;
    shard.fault_kill_after_rows = 2;

    // Whether the orphaned slice lands on a respawn or on the
    // survivor depends on who is idle at death time; the rows must
    // be byte-identical either way.
    std::vector<engine::SweepPoint> merged =
        service::runShardedSweep(grid, shard);
    EXPECT_EQ(engine::canonicalSweepRows(merged), expected);
    EXPECT_TRUE(stats.degraded);
    EXPECT_GE(stats.worker_failures, 1u);
    EXPECT_LE(stats.worker_restarts, 1u);
    EXPECT_GE(stats.points_reassigned, 1u);
    EXPECT_GE(stats.reassignments, 1u);
}

TEST(ShardFault, RestartsExhaustedSurvivorAbsorbsTheSlice)
{
    setQuiet(true);
    engine::SweepGrid grid = faultGrid();
    std::string expected = singleProcessRows(grid);

    service::FleetStats stats;
    service::ShardOptions shard;
    shard.workers = 2;
    shard.sweep.num_threads = 1;
    shard.idle_timeout_sec = 120;
    shard.stats = &stats;
    shard.fault_kill_worker = 1;
    shard.fault_kill_after_rows = 2;
    // No respawn budget: the orphaned slice must wait for the
    // surviving worker to finish its own slice and pick it up.
    shard.max_worker_restarts = 0;

    std::vector<engine::SweepPoint> merged =
        service::runShardedSweep(grid, shard);
    EXPECT_EQ(engine::canonicalSweepRows(merged), expected);
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.worker_restarts, 0u);
    EXPECT_GE(stats.reassignments, 1u);
}

TEST(ShardFault, LocalTcpTransportMatchesSocketpairRows)
{
    setQuiet(true);
    engine::SweepGrid grid = faultGrid();
    std::string expected = singleProcessRows(grid);

    service::ShardOptions shard;
    shard.workers = 2;
    shard.sweep.num_threads = 1;
    shard.idle_timeout_sec = 120;
    shard.local_tcp = true;

    std::vector<engine::SweepPoint> merged =
        service::runShardedSweep(grid, shard);
    EXPECT_EQ(engine::canonicalSweepRows(merged), expected);
}

TEST(ShardFault, RemoteTcpWorkerReceivesGridOverTheWire)
{
    setQuiet(true);
    engine::SweepGrid grid = faultGrid();
    std::string expected = singleProcessRows(grid);

    // A "remote" worker: a process that shares no grid memory with
    // the parent (fork before any assignment, grid decoded off the
    // wire by serveSweepWorker).  The listener is created pre-fork
    // so the port is known to both sides.
    wire::TcpListener listener("127.0.0.1:0");
    std::string spec =
        "127.0.0.1:" + std::to_string(listener.port());
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        int fd = listener.accept();
        if (fd < 0)
            ::_exit(2);
        service::SweepWorkerEnv env; // env.grid == nullptr.
        env.base.num_threads = 1;
        bool orderly = service::serveSweepWorker(fd, env);
        ::close(fd);
        ::_exit(orderly ? 0 : 1);
    }

    service::ShardOptions shard;
    shard.workers = 1;
    shard.sweep.num_threads = 1;
    shard.idle_timeout_sec = 120;
    shard.remote_workers = {spec};

    std::vector<engine::SweepPoint> merged =
        service::runShardedSweep(grid, shard);
    EXPECT_EQ(engine::canonicalSweepRows(merged), expected);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "remote worker exit status " << status;
}

TEST(ShardFault, DeadRemoteWorkerIsRedialedAndRejoins)
{
    setQuiet(true);
    engine::SweepGrid grid = faultGrid();
    std::string expected = singleProcessRows(grid);

    // A remote worker that drops its first connection cold (the
    // parent sees EOF and orphans the slice), then accepts again and
    // serves properly — what a crashed-and-restarted process on the
    // same address looks like.  The listener survives pre-fork so
    // both connections land on the same spec.
    wire::TcpListener listener("127.0.0.1:0");
    std::string spec =
        "127.0.0.1:" + std::to_string(listener.port());
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Watchdog: if the parent dies before the second dial, the
        // child must not sit in accept() holding the test's pipes.
        ::alarm(120);
        int first = listener.accept();
        if (first < 0)
            ::_exit(2);
        ::close(first);
        int fd = listener.accept();
        if (fd < 0)
            ::_exit(2);
        service::SweepWorkerEnv env; // env.grid == nullptr.
        env.base.num_threads = 1;
        bool orderly = service::serveSweepWorker(fd, env);
        ::close(fd);
        ::_exit(orderly ? 0 : 1);
    }

    service::FleetStats stats;
    service::ShardOptions shard;
    // No locals and no respawn budget: the orphaned slice can only
    // finish if the redial probe puts the remote back in rotation.
    shard.workers = 0;
    shard.max_worker_restarts = 0;
    shard.sweep.num_threads = 1;
    shard.idle_timeout_sec = 120;
    shard.remote_workers = {spec};
    shard.remote_redial_interval_sec = 1;
    shard.stats = &stats;

    std::vector<engine::SweepPoint> merged =
        service::runShardedSweep(grid, shard);
    EXPECT_EQ(engine::canonicalSweepRows(merged), expected);
    EXPECT_TRUE(stats.degraded);
    EXPECT_GE(stats.worker_failures, 1u);
    EXPECT_EQ(stats.remote_redials, 1u);
    EXPECT_EQ(stats.worker_restarts, 0u);
    EXPECT_GE(stats.points_reassigned, 1u);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "remote worker exit status " << status;
}

} // namespace
} // namespace qsurf
