/**
 * @file
 * Unit tests for the common substrate: logging contract, RNG
 * determinism and distribution bounds, geometry, statistics
 * accumulators, table rendering, and the scratch arena
 * (alignment, checkpoint/rewind, reset coalescing, counters, the
 * thread-local scope binding and the STL allocator over it).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <sstream>

#include <algorithm>
#include <utility>

#include "common/arena.h"
#include "common/geometry.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/small_vector.h"
#include "common/stats.h"
#include "common/table.h"

namespace qsurf {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug ", 1), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "never"));
    EXPECT_THROW(fatalIf(true, "always"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "never"));
    EXPECT_THROW(panicIf(true, "always"), PanicError);
}

TEST(Logging, MessagesConcatenateArguments)
{
    try {
        fatal("a", 1, "b", 2.5);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "a1b2.5");
    }
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL})
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
}

TEST(Rng, BelowZeroReturnsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}


TEST(Arena, AlignsEveryAllocation)
{
    Arena arena(64); // Tiny first block: growth paths get hit.
    for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         alignof(std::max_align_t)}) {
        for (size_t size : {size_t{1}, size_t{3}, size_t{17},
                            size_t{128}}) {
            void *p = arena.alloc(size, align);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
                << "size " << size << " align " << align;
            std::memset(p, 0xAB, size); // Must be writable.
        }
    }
    // Size 0 still returns a valid (distinct-use) pointer.
    EXPECT_NE(arena.alloc(0), nullptr);
}

TEST(Arena, CheckpointRewindReusesMemory)
{
    Arena arena(1024);
    Arena::Checkpoint cp = arena.checkpoint();
    void *first = arena.alloc(64);
    arena.rewind(cp);
    void *again = arena.alloc(64);
    // Same position after rewind => the bytes were reused.
    EXPECT_EQ(first, again);

    // Counters are cumulative: rewind never rolls them back.
    Arena::Stats s = arena.stats();
    EXPECT_EQ(s.allocations, 2u);
    EXPECT_GE(s.bytes, 128u);
}

TEST(Arena, ResetCoalescesToOneBlockAndBumpsGeneration)
{
    Arena arena(64);
    uint64_t gen = arena.generation();
    for (int i = 0; i < 64; ++i)
        arena.alloc(64); // Forces several growth blocks.
    EXPECT_GT(arena.stats().blocks, 1u);

    arena.reset();
    EXPECT_EQ(arena.stats().blocks, 1u);
    EXPECT_GT(arena.generation(), gen);
    EXPECT_EQ(arena.stats().resets, 1u);

    // Steady state: the coalesced block absorbs the same load
    // without growing again.
    uint64_t reserved = arena.stats().reserved;
    for (int i = 0; i < 64; ++i)
        arena.alloc(64);
    EXPECT_EQ(arena.stats().blocks, 1u);
    EXPECT_EQ(arena.stats().reserved, reserved);
}

TEST(Arena, ScopeBindsAndRestoresThreadScratch)
{
    EXPECT_EQ(Arena::scratch(), nullptr);
    Arena outer_arena;
    {
        Arena::Scope outer(&outer_arena);
        EXPECT_EQ(Arena::scratch(), &outer_arena);
        {
            // Null masks the outer binding (heap-fallback region).
            Arena::Scope masked(nullptr);
            EXPECT_EQ(Arena::scratch(), nullptr);
        }
        EXPECT_EQ(Arena::scratch(), &outer_arena);
    }
    EXPECT_EQ(Arena::scratch(), nullptr);
}

TEST(ArenaAllocator, DefaultCapturesScratchExplicitWins)
{
    // No binding: heap-backed, results still correct.
    {
        std::set<int, std::less<int>, ArenaAllocator<int>> s;
        for (int i = 0; i < 100; ++i)
            s.insert(99 - i);
        EXPECT_EQ(*s.begin(), 0);
        EXPECT_EQ(s.size(), 100u);
    }

    Arena arena;
    uint64_t before = arena.stats().allocations;
    {
        Arena::Scope scope(&arena);
        std::set<int, std::less<int>, ArenaAllocator<int>> s;
        for (int i = 0; i < 100; ++i)
            s.insert(99 - i);
        EXPECT_EQ(*s.begin(), 0);
        // Node storage came from the bound arena.
        EXPECT_GE(arena.stats().allocations, before + 100);
    }
    arena.reset();

    // Explicit construction needs no binding at all.
    uint64_t explicit_before = arena.stats().allocations;
    std::vector<int, ArenaAllocator<int>> v{
        ArenaAllocator<int>(arena)};
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    EXPECT_EQ(v.back(), 99);
    EXPECT_GT(arena.stats().allocations, explicit_before);
}

TEST(ArenaStreamBuf, AssemblesBytesFromTheBoundArena)
{
    Arena arena;
    Arena::Scope scope(&arena);
    ArenaStreamBuf buf(16);
    std::ostream os(&buf);
    for (int i = 0; i < 100; ++i)
        os << "row-" << i << ";";
    std::string out = buf.str();
    EXPECT_EQ(out.size(), buf.size());
    EXPECT_NE(out.find("row-99;"), std::string::npos);
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    os << "fresh";
    EXPECT_EQ(buf.str(), "fresh");
}

TEST(Geometry, ManhattanAndChebyshev)
{
    Coord a{0, 0}, b{3, -4};
    EXPECT_EQ(manhattan(a, b), 7);
    EXPECT_EQ(chebyshev(a, b), 4);
    EXPECT_EQ(manhattan(a, a), 0);
}

TEST(Geometry, LinearIndexRoundTrip)
{
    int width = 7;
    for (int i = 0; i < 35; ++i) {
        Coord c = fromLinearIndex(i, width);
        EXPECT_EQ(linearIndex(c, width), i);
    }
}

TEST(Geometry, CoordOrderingAndHash)
{
    EXPECT_LT((Coord{1, 2}), (Coord{2, 1}));
    EXPECT_EQ((Coord{3, 4}), (Coord{3, 4}));
    std::hash<Coord> h;
    EXPECT_NE(h(Coord{1, 2}), h(Coord{2, 1}));
}

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, EmptyIsSafe)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential)
{
    Accumulator all, left, right;
    for (int i = 0; i < 50; ++i) {
        double x = 0.3 * i - 2;
        all.add(x);
        (i < 20 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Histogram, CountsAndQuantiles)
{
    Histogram h(0, 10, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i % 10 + 0.5);
    EXPECT_EQ(h.count(), 100u);
    for (int b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 10u);
    EXPECT_NEAR(h.quantile(0.5), 4.0, 1.01);
}

TEST(Histogram, SaturatingEdges)
{
    Histogram h(0, 1, 4);
    h.add(-100);
    h.add(100);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, RejectsEmptyRange)
{
    EXPECT_THROW(Histogram(1, 1, 4), FatalError);
    EXPECT_THROW(Histogram(0, 1, 0), FatalError);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t("demo");
    t.header({"name", "value"});
    t.addRow("alpha", 42);
    t.addRow("beta", 3.5);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.5"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("x");
    t.header({"a", "b"});
    t.addRow(1, 2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t("x");
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only one"}), PanicError);
}

TEST(SmallVector, InlineThenHeapGrowth)
{
    SmallVector<int, 4> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(v[static_cast<size_t>(i)], i);
    EXPECT_EQ(v.front(), 0);
    EXPECT_EQ(v.back(), 99);
}

TEST(SmallVector, InitializerListAndEquality)
{
    SmallVector<int, 4> a{1, 2, 3};
    SmallVector<int, 4> b{1, 2, 3};
    SmallVector<int, 4> c{1, 2};
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(SmallVector, CopyAndMoveAcrossStorageModes)
{
    for (size_t n : {size_t{3}, size_t{20}}) {
        SmallVector<int, 4> src;
        for (size_t i = 0; i < n; ++i)
            src.push_back(static_cast<int>(i));

        SmallVector<int, 4> copy(src);
        EXPECT_TRUE(copy == src);

        SmallVector<int, 4> moved(std::move(src));
        EXPECT_TRUE(moved == copy);
        EXPECT_TRUE(src.empty()); // NOLINT: moved-from is reusable.
        src.push_back(7);
        EXPECT_EQ(src.back(), 7);

        SmallVector<int, 4> assigned;
        assigned.push_back(-1);
        assigned = copy;
        EXPECT_TRUE(assigned == copy);
        SmallVector<int, 4> move_assigned{9, 9, 9, 9, 9};
        move_assigned = std::move(assigned);
        EXPECT_TRUE(move_assigned == copy);
    }
}

TEST(SmallVector, WorksWithStdAlgorithms)
{
    SmallVector<int, 4> v{5, 1, 4, 2, 3, 0};
    std::reverse(v.begin(), v.end());
    EXPECT_EQ(v[0], 0);
    std::sort(v.begin(), v.end());
    for (size_t i = 0; i + 1 < v.size(); ++i)
        EXPECT_LE(v[i], v[i + 1]);
    v.clear();
    EXPECT_TRUE(v.empty());
}

} // namespace
} // namespace qsurf
