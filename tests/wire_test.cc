/**
 * @file
 * Wire-protocol tests: framing round-trips, rejection of every
 * malformed-frame class (truncated, corrupt, oversized, wrong
 * version, wrong type, unaligned), request/response codec
 * round-trips, and a live serveConnection() session over a
 * socketpair matching the in-process CompileService bit for bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "service/service.h"
#include "service/wire.h"

namespace qsurf {
namespace {

namespace wire = service::wire;

wire::Frame
roundTrip(const std::string &encoded)
{
    wire::Frame out;
    size_t consumed = 0;
    EXPECT_EQ(wire::decodeFrame(encoded.data(), encoded.size(), out,
                                consumed),
              wire::DecodeStatus::Ok);
    EXPECT_EQ(consumed, encoded.size());
    return out;
}

TEST(WireFraming, RoundTripsEveryType)
{
    for (wire::FrameType type :
         {wire::FrameType::Hello, wire::FrameType::Request,
          wire::FrameType::Response, wire::FrameType::Telemetry,
          wire::FrameType::Row, wire::FrameType::ShardAssign,
          wire::FrameType::Done, wire::FrameType::Error,
          wire::FrameType::Shutdown}) {
        wire::Frame in{type, R"({"k":1})"};
        wire::Frame out = roundTrip(wire::encodeFrame(in));
        EXPECT_EQ(out.type, type);
        EXPECT_EQ(out.payload, in.payload);
    }
    // Empty payloads are legal (Telemetry queries, Done).
    wire::Frame empty{wire::FrameType::Done, ""};
    EXPECT_EQ(roundTrip(wire::encodeFrame(empty)).payload, "");
}

TEST(WireFraming, EveryPrefixOfAValidFrameNeedsMore)
{
    std::string encoded = wire::encodeFrame(
        {wire::FrameType::Request, R"({"backend":"planar"})"});
    for (size_t len = 0; len < encoded.size(); ++len) {
        wire::Frame out;
        size_t consumed = 0;
        EXPECT_EQ(wire::decodeFrame(encoded.data(), len, out,
                                    consumed),
                  wire::DecodeStatus::NeedMore)
            << "prefix length " << len;
    }
}

TEST(WireFraming, RejectsUnalignedStream)
{
    std::string garbage = "GET / HTTP/1.1\r\n";
    wire::Frame out;
    size_t consumed = 0;
    EXPECT_EQ(wire::decodeFrame(garbage.data(), garbage.size(), out,
                                consumed),
              wire::DecodeStatus::BadMagic);
    // Even a one-byte wrong prefix is rejected immediately.
    EXPECT_EQ(wire::decodeFrame("X", 1, out, consumed),
              wire::DecodeStatus::BadMagic);
}

TEST(WireFraming, RejectsWrongVersionTypeSizeAndHash)
{
    std::string good = wire::encodeFrame(
        {wire::FrameType::Row, R"({"index":3})"});
    wire::Frame out;
    size_t consumed = 0;

    std::string bad = good;
    bad[4] = static_cast<char>(0xFF); // Version field (LE u16).
    EXPECT_EQ(wire::decodeFrame(bad.data(), bad.size(), out,
                                consumed),
              wire::DecodeStatus::BadVersion);

    bad = good;
    bad[6] = 0x7F; // Type field outside the known range.
    EXPECT_EQ(wire::decodeFrame(bad.data(), bad.size(), out,
                                consumed),
              wire::DecodeStatus::BadType);

    bad = good;
    bad[11] = 0x7F; // Length field's high byte: > kMaxPayload.
    EXPECT_EQ(wire::decodeFrame(bad.data(), bad.size(), out,
                                consumed),
              wire::DecodeStatus::Oversized);

    bad = good;
    bad.back() ^= 0x01; // Flip one payload bit.
    EXPECT_EQ(wire::decodeFrame(bad.data(), bad.size(), out,
                                consumed),
              wire::DecodeStatus::BadHash);
}

TEST(WireFraming, ReadFrameDistinguishesCleanEofFromTruncation)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Clean close at a frame boundary: one frame, then Eof.
    EXPECT_TRUE(
        wire::writeFrame(fds[0], wire::FrameType::Done, "{}").ok());
    ::close(fds[0]);
    wire::Frame out;
    EXPECT_TRUE(wire::readFrame(fds[1], out).ok());
    EXPECT_EQ(out.type, wire::FrameType::Done);
    EXPECT_EQ(wire::readFrame(fds[1], out).status,
              wire::IoStatus::Eof);
    ::close(fds[1]);

    // A peer dying mid-payload is truncation — a value the caller
    // handles, never an exception.
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string encoded = wire::encodeFrame(
        {wire::FrameType::Row, R"({"index":0})"});
    ASSERT_EQ(::write(fds[0], encoded.data(), encoded.size() - 3),
              static_cast<ssize_t>(encoded.size() - 3));
    ::close(fds[0]);
    EXPECT_EQ(wire::readFrame(fds[1], out).status,
              wire::IoStatus::Truncated);
    ::close(fds[1]);

    // ... and dying inside the fixed header is the same torn-frame
    // class, not a clean EOF.
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(::write(fds[0], encoded.data(), 7), 7);
    ::close(fds[0]);
    EXPECT_EQ(wire::readFrame(fds[1], out).status,
              wire::IoStatus::Truncated);
    ::close(fds[1]);
}

TEST(WireFraming, ReadFrameReportsCorruptHeadersAsValues)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string bad = wire::encodeFrame(
        {wire::FrameType::Row, R"({"index":1})"});
    bad[0] = 'X'; // Break the magic.
    ASSERT_EQ(::write(fds[0], bad.data(), bad.size()),
              static_cast<ssize_t>(bad.size()));
    ::close(fds[0]);
    wire::Frame out;
    wire::IoResult r = wire::readFrame(fds[1], out);
    EXPECT_EQ(r.status, wire::IoStatus::Corrupt);
    EXPECT_EQ(r.decode, wire::DecodeStatus::BadMagic);
    EXPECT_NE(r.describe().find("bad-magic"), std::string::npos);
    ::close(fds[1]);
}

TEST(WireFraming, WriteFrameToClosedPeerReturnsPeerGone)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ::close(fds[1]);
    // The first write may land in the buffer; keep writing until
    // the kernel reports the peer is gone (no SIGPIPE either way).
    wire::IoResult r;
    for (int i = 0; i < 8 && r.ok(); ++i)
        r = wire::writeFrame(fds[0], wire::FrameType::Row, "{}");
    EXPECT_EQ(r.status, wire::IoStatus::PeerGone);
    ::close(fds[0]);
}

TEST(WireCodec, CompileRequestRoundTripsEveryField)
{
    service::CompileRequest req;
    req.app = apps::AppKind::SHA1;
    req.gen = {32, 7};
    req.decompose.rz_sequence_length = 11;
    req.decompose.rz_t_fraction = 0.25;
    req.decompose.expand_swap = false;
    req.run_peephole = false;
    req.label = "round-trip";
    req.backend = engine::backends::hybrid_mixed;
    req.config.tech.p_physical = 1e-6;
    req.config.code_distance = 17;
    req.config.policy = 3;
    req.config.epr_window_steps = 48;
    req.config.kq = 1e7;
    req.config.fast_forward = false;
    req.config.adapt_timeout = 6;
    req.config.max_cycles = 3'000'000'000ull;
    req.config.hybrid_arbiter = 2;
    req.config.layout_objective = 2;
    req.config.lane_spacing = 3;
    req.config.defect_density = 0.07;
    req.config.defect_seed = 99;
    req.config.defect_spec =
        "{\"dead_tiles\": [[1, 2]], \"disabled_links\": "
        "[[0, 0, 1, 0]]}";
    req.config.seed = 424242;

    service::CompileRequest back =
        wire::decodeCompileRequest(wire::encodeCompileRequest(req));
    EXPECT_EQ(back.app, req.app);
    EXPECT_EQ(back.gen.problem_size, req.gen.problem_size);
    EXPECT_EQ(back.gen.max_iterations, req.gen.max_iterations);
    EXPECT_EQ(back.decompose.rz_sequence_length,
              req.decompose.rz_sequence_length);
    EXPECT_DOUBLE_EQ(back.decompose.rz_t_fraction,
                     req.decompose.rz_t_fraction);
    EXPECT_EQ(back.decompose.expand_swap,
              req.decompose.expand_swap);
    EXPECT_EQ(back.run_peephole, req.run_peephole);
    EXPECT_EQ(back.label, req.label);
    EXPECT_EQ(back.backend, req.backend);
    EXPECT_DOUBLE_EQ(back.config.tech.p_physical,
                     req.config.tech.p_physical);
    EXPECT_EQ(back.config.code_distance, req.config.code_distance);
    EXPECT_EQ(back.config.policy, req.config.policy);
    EXPECT_EQ(back.config.epr_window_steps,
              req.config.epr_window_steps);
    EXPECT_DOUBLE_EQ(back.config.kq, req.config.kq);
    EXPECT_EQ(back.config.fast_forward, req.config.fast_forward);
    EXPECT_EQ(back.config.adapt_timeout, req.config.adapt_timeout);
    EXPECT_EQ(back.config.max_cycles, req.config.max_cycles);
    EXPECT_EQ(back.config.hybrid_arbiter,
              req.config.hybrid_arbiter);
    EXPECT_EQ(back.config.layout_objective,
              req.config.layout_objective);
    EXPECT_EQ(back.config.lane_spacing, req.config.lane_spacing);
    EXPECT_DOUBLE_EQ(back.config.defect_density,
                     req.config.defect_density);
    EXPECT_EQ(back.config.defect_seed, req.config.defect_seed);
    EXPECT_EQ(back.config.defect_spec, req.config.defect_spec);
    EXPECT_EQ(back.config.seed, req.config.seed);
}

TEST(WireCodec, CallerCircuitsAreNotRepresentable)
{
    service::CompileRequest req;
    req.circuit = std::make_shared<const circuit::Circuit>(
        apps::generate(apps::AppKind::SQ, {8, 1}));
    EXPECT_THROW(wire::encodeCompileRequest(req), FatalError);
}

TEST(WireCodec, CompileResponseRoundTripsMetricsAndErrors)
{
    service::CompileResponse resp;
    resp.prepare_ms = 1.5;
    resp.run_ms = 20.25;
    resp.batch_size = 3;
    resp.metrics.backend = "surgery-sim";
    resp.metrics.code = qec::CodeKind::Planar;
    resp.metrics.code_distance = 9;
    resp.metrics.schedule_cycles = 123456789;
    resp.metrics.critical_path_cycles = 7777;
    resp.metrics.physical_qubits = 1e5;
    resp.metrics.seconds = 0.125;
    resp.metrics.set("mesh_utilization", 0.5);
    resp.metrics.set("teleports", 42);

    service::CompileResponse back = wire::decodeCompileResponse(
        wire::encodeCompileResponse(resp));
    EXPECT_TRUE(back.ok());
    EXPECT_DOUBLE_EQ(back.prepare_ms, resp.prepare_ms);
    EXPECT_DOUBLE_EQ(back.run_ms, resp.run_ms);
    EXPECT_EQ(back.batch_size, resp.batch_size);
    EXPECT_EQ(back.metrics.backend, resp.metrics.backend);
    EXPECT_EQ(back.metrics.code_distance,
              resp.metrics.code_distance);
    EXPECT_EQ(back.metrics.schedule_cycles,
              resp.metrics.schedule_cycles);
    EXPECT_EQ(back.metrics.critical_path_cycles,
              resp.metrics.critical_path_cycles);
    EXPECT_DOUBLE_EQ(back.metrics.physical_qubits,
                     resp.metrics.physical_qubits);
    EXPECT_DOUBLE_EQ(back.metrics.seconds, resp.metrics.seconds);
    ASSERT_EQ(back.metrics.extras.size(),
              resp.metrics.extras.size());
    EXPECT_DOUBLE_EQ(back.metrics.extra("mesh_utilization"), 0.5);
    EXPECT_DOUBLE_EQ(back.metrics.extra("teleports"), 42);

    service::CompileResponse failed;
    failed.error = "no such backend";
    service::CompileResponse failed_back =
        wire::decodeCompileResponse(
            wire::encodeCompileResponse(failed));
    EXPECT_FALSE(failed_back.ok());
    EXPECT_EQ(failed_back.error, failed.error);
}

TEST(WireServe, SocketpairSessionMatchesInProcessService)
{
    setQuiet(true);
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    service::CompileService::Options opts;
    opts.num_threads = 1;
    service::CompileService server_svc(opts);
    wire::ServeStats stats;
    std::thread server([&] {
        stats = wire::serveConnection(server_svc, fds[0], fds[0]);
        ::close(fds[0]);
    });

    service::CompileRequest req;
    req.app = apps::AppKind::SQ;
    req.gen = {8, 2};
    req.backend = engine::backends::surgery_sim;
    req.config.code_distance = 5;
    req.config.seed = 3;

    {
        wire::Client client(fds[1], fds[1]);

        service::CompileResponse over_wire = client.compile(req);
        ASSERT_TRUE(over_wire.ok()) << over_wire.error;

        service::CompileService local_svc(opts);
        service::CompileResponse direct = local_svc.compile(req);
        ASSERT_TRUE(direct.ok()) << direct.error;
        EXPECT_EQ(over_wire.metrics.schedule_cycles,
                  direct.metrics.schedule_cycles);
        EXPECT_EQ(over_wire.metrics.critical_path_cycles,
                  direct.metrics.critical_path_cycles);
        EXPECT_DOUBLE_EQ(over_wire.metrics.physical_qubits,
                         direct.metrics.physical_qubits);

        // A bad request gets an error response; the session lives.
        service::CompileRequest bad = req;
        bad.backend = "no-such-backend";
        service::CompileResponse err = client.compile(bad);
        EXPECT_FALSE(err.ok());
        EXPECT_NE(err.error.find("no-such-backend"),
                  std::string::npos);

        std::string telemetry = client.telemetry();
        EXPECT_NE(telemetry.find("\"requests\""),
                  std::string::npos);

        client.shutdown();
    }
    server.join();
    EXPECT_TRUE(stats.shutdown);
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.errors, 0u);
}

TEST(WireServe, MalformedPayloadGetsErrorFrameSessionSurvives)
{
    setQuiet(true);
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    service::CompileService::Options opts;
    opts.num_threads = 1;
    service::CompileService svc(opts);
    wire::ServeStats stats;
    std::thread server([&] {
        stats = wire::serveConnection(svc, fds[0], fds[0]);
        ::close(fds[0]);
    });

    wire::Frame frame;
    ASSERT_TRUE(wire::readFrame(fds[1], frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::Hello);

    // Valid frame, garbage payload: the request is poisoned, the
    // connection is not.
    wire::writeFrame(fds[1], wire::FrameType::Request, "not json");
    ASSERT_TRUE(wire::readFrame(fds[1], frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::Error);

    service::CompileRequest req;
    req.app = apps::AppKind::SQ;
    req.gen = {8, 1};
    req.config.code_distance = 3;
    wire::writeFrame(fds[1], wire::FrameType::Request,
                     wire::encodeCompileRequest(req));
    ASSERT_TRUE(wire::readFrame(fds[1], frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::Response);
    EXPECT_TRUE(
        wire::decodeCompileResponse(frame.payload).ok());

    wire::writeFrame(fds[1], wire::FrameType::Shutdown, "");
    ASSERT_TRUE(wire::readFrame(fds[1], frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::Done);
    ::close(fds[1]);
    server.join();
    EXPECT_EQ(stats.errors, 1u);
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_TRUE(stats.shutdown);
}

TEST(WireServe, ClientVanishingMidSessionIsPeerGoneNotFatal)
{
    setQuiet(true);
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    service::CompileService::Options opts;
    opts.num_threads = 1;
    service::CompileService svc(opts);
    wire::ServeStats stats;
    std::thread server([&] {
        // The regression: this must return, not throw, when the
        // client disappears after sending a request.
        stats = wire::serveConnection(svc, fds[0], fds[0]);
        ::close(fds[0]);
    });

    wire::Frame frame;
    ASSERT_TRUE(wire::readFrame(fds[1], frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::Hello);

    service::CompileRequest req;
    req.app = apps::AppKind::SQ;
    req.gen = {8, 1};
    req.config.code_distance = 3;
    wire::writeFrame(fds[1], wire::FrameType::Request,
                     wire::encodeCompileRequest(req));
    // Vanish without reading the response.
    ::close(fds[1]);
    server.join();
    EXPECT_TRUE(stats.peer_gone);
    EXPECT_FALSE(stats.shutdown);
}

TEST(WireServe, CorruptFrameHeaderDropsConnectionAndIsCounted)
{
    setQuiet(true);
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    service::CompileService::Options opts;
    opts.num_threads = 1;
    service::CompileService svc(opts);
    wire::ServeStats stats;
    std::thread server([&] {
        stats = wire::serveConnection(svc, fds[0], fds[0]);
        ::close(fds[0]);
    });

    wire::Frame frame;
    ASSERT_TRUE(wire::readFrame(fds[1], frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::Hello);

    // A stream that is not frame-aligned can never recover; the
    // server must drop this connection (and count it), not die.
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::write(fds[1], garbage, sizeof(garbage) - 1), 0);
    server.join();
    EXPECT_EQ(stats.corrupt_frames, 1u);
    EXPECT_FALSE(stats.shutdown);
    ::close(fds[1]);
}

TEST(WireListeners, UnixListenerProbesBeforeUnlinking)
{
    setQuiet(true);
    std::string path =
        ::testing::TempDir() + "/qsurf_wire_probe.sock";
    std::remove(path.c_str());

    {
        // A live listener on the path: binding over it would steal
        // its clients, so a second listener must refuse.
        wire::UnixListener live(path);
        EXPECT_THROW({ wire::UnixListener second(path); },
                     FatalError);
    }

    // A stale socket file (server long dead): safe to unlink and
    // reuse.  The destructor above unlinked; recreate a dead one.
    {
        wire::UnixListener first(path);
    } // Unlinked again on destruction.
    int raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(raw, 0);
    struct sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(raw, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ::close(raw); // Dead socket file left behind, nobody listening.
    {
        wire::UnixListener reclaimed(path);
        EXPECT_EQ(reclaimed.path(), path);
    }

    // A plain file is never unlinked — it is not ours to destroy.
    {
        std::ofstream f(path);
        f << "precious data";
    }
    EXPECT_THROW({ wire::UnixListener hijack(path); }, FatalError);
    std::remove(path.c_str());
}

TEST(WireListeners, TcpEphemeralPortRoundTrip)
{
    setQuiet(true);
    wire::TcpListener listener("127.0.0.1:0");
    ASSERT_GT(listener.port(), 0);

    std::thread client([&] {
        int fd = wire::connectTcp("127.0.0.1", listener.port());
        ASSERT_GE(fd, 0);
        EXPECT_TRUE(wire::writeFrame(fd, wire::FrameType::Row,
                                     R"({"index":7})")
                        .ok());
        ::close(fd);
    });
    int conn = listener.accept();
    ASSERT_GE(conn, 0);
    wire::Frame frame;
    ASSERT_TRUE(wire::readFrame(conn, frame).ok());
    EXPECT_EQ(frame.type, wire::FrameType::Row);
    EXPECT_EQ(frame.payload, R"({"index":7})");
    ::close(conn);
    client.join();
}

TEST(WireListeners, ParseHostPortClassifiesSpecs)
{
    std::string host;
    uint16_t port = 0;
    EXPECT_TRUE(wire::parseHostPort("127.0.0.1:7700", host, port));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 7700);
    EXPECT_TRUE(wire::parseHostPort("[::1]:80", host, port));
    EXPECT_EQ(host, "::1");
    EXPECT_EQ(port, 80);
    EXPECT_TRUE(wire::parseHostPort("node3:0", host, port));
    EXPECT_EQ(port, 0);
    // Unix-socket paths and junk are not host:port.
    EXPECT_FALSE(wire::parseHostPort("/tmp/qsurf.sock", host, port));
    EXPECT_FALSE(
        wire::parseHostPort("./dir:with/colon.sock", host, port));
    EXPECT_FALSE(wire::parseHostPort("no-port", host, port));
    EXPECT_FALSE(wire::parseHostPort("host:99999", host, port));
    EXPECT_FALSE(wire::parseHostPort("host:abc", host, port));
}

TEST(WireListeners, ConnectWithRetryBacksOffThenGivesUp)
{
    setQuiet(true);
    // Nobody home: every attempt fails, the retry counter proves
    // the backoff loop actually ran.
    wire::RetryPolicy policy;
    policy.max_attempts = 3;
    policy.base_delay_ms = 1;
    policy.max_delay_ms = 4;
    uint64_t retries = 0;
    EXPECT_EQ(wire::connectWithRetry(
                  ::testing::TempDir() + "/qsurf_absent.sock",
                  policy, &retries),
              -1);
    EXPECT_EQ(retries, 3u);

    // Somebody home: first attempt connects, zero retries.
    std::string path =
        ::testing::TempDir() + "/qsurf_retry_live.sock";
    std::remove(path.c_str());
    wire::UnixListener listener(path);
    retries = 0;
    int fd = wire::connectWithRetry(path, policy, &retries);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(retries, 0u);
    if (fd >= 0)
        ::close(fd);
}

TEST(WireCodec, SweepGridRoundTripsWithEqualFingerprint)
{
    engine::SweepGrid grid;
    grid.apps = {{apps::AppKind::SQ, {8, 2}, ""},
                 {apps::AppKind::GSE, {16, 3}, "labelled"}};
    grid.backends = {engine::backends::surgery_sim,
                     engine::backends::planar};
    grid.policies = {2, 6};
    grid.arbiters = {0, 1};
    grid.layout_objectives = {0, 2};
    grid.distances = {3, 5};
    grid.epr_windows = {-1, 32};
    grid.sizes = {0, 1e6};
    grid.defects = {0, 0.04, 0.08};
    grid.base.seed = 77;
    grid.base.code_distance = 7;
    grid.base.tech.p_physical = 1e-5;
    grid.base.defect_seed = 13;
    grid.base.defect_spec = "{\"dead_tiles\": [[0, 1]]}";

    engine::SweepGrid back =
        wire::decodeSweepGrid(wire::encodeSweepGrid(grid));
    // Fingerprint equality is the contract the shard parent checks:
    // the decoded grid expands to the identical experiment.
    EXPECT_EQ(engine::sweepGridFingerprint(back),
              engine::sweepGridFingerprint(grid));
    ASSERT_EQ(back.apps.size(), grid.apps.size());
    EXPECT_EQ(back.apps[1].label, grid.apps[1].label);
    EXPECT_EQ(back.backends, grid.backends);
    EXPECT_EQ(back.distances, grid.distances);
    EXPECT_EQ(back.defects, grid.defects);
    EXPECT_EQ(back.base.defect_seed, grid.base.defect_seed);
    EXPECT_EQ(back.base.defect_spec, grid.base.defect_spec);

    // Caller-built circuits cannot cross the wire.
    engine::SweepGrid with_circuit;
    with_circuit.apps = {engine::AppPoint(
        std::make_shared<const circuit::Circuit>(
            apps::generate(apps::AppKind::SQ, {8, 1})),
        "caller")};
    with_circuit.backends = {engine::backends::surgery_sim};
    EXPECT_THROW(wire::encodeSweepGrid(with_circuit), FatalError);
}

} // namespace
} // namespace qsurf
