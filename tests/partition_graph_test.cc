/**
 * @file
 * Tests for the partitioner's graph representation and cut metric.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "partition/graph.h"

namespace qsurf::partition {
namespace {

TEST(Graph, ParallelEdgesAccumulate)
{
    Graph g(3);
    g.addEdge(0, 1, 2);
    g.addEdge(1, 0, 3);
    auto edges = g.edges();
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].w, 5);
    EXPECT_EQ(g.totalEdgeWeight(), 5);
}

TEST(Graph, NeighborsAreSymmetric)
{
    Graph g(3);
    g.addEdge(0, 2, 7);
    ASSERT_EQ(g.neighbors(0).size(), 1u);
    ASSERT_EQ(g.neighbors(2).size(), 1u);
    EXPECT_EQ(g.neighbors(0)[0].first, 2);
    EXPECT_EQ(g.neighbors(2)[0].first, 0);
    EXPECT_EQ(g.neighbors(2)[0].second, 7);
}

TEST(Graph, VertexWeightsDefaultToOne)
{
    Graph g(4);
    EXPECT_EQ(g.totalVertexWeight(), 4);
    g.setVertexWeight(1, 10);
    EXPECT_EQ(g.totalVertexWeight(), 13);
    EXPECT_EQ(g.vertexWeight(1), 10);
}

TEST(Graph, RejectsSelfLoopsAndBadIndices)
{
    Graph g(2);
    EXPECT_THROW(g.addEdge(0, 0), qsurf::FatalError);
    EXPECT_THROW(g.addEdge(0, 2), qsurf::FatalError);
    EXPECT_THROW(g.addEdge(-1, 0), qsurf::FatalError);
    EXPECT_THROW(g.addEdge(0, 1, 0), qsurf::FatalError);
    EXPECT_THROW(g.setVertexWeight(5, 1), qsurf::FatalError);
}

TEST(Graph, CutWeightCountsCrossingEdges)
{
    Graph g(4);
    g.addEdge(0, 1, 5); // inside side 0
    g.addEdge(2, 3, 7); // inside side 1
    g.addEdge(1, 2, 3); // crossing
    std::vector<int> side{0, 0, 1, 1};
    EXPECT_EQ(cutWeight(g, side), 3);
}

TEST(Graph, CutWeightZeroWhenOneSided)
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    std::vector<int> side{0, 0, 0};
    EXPECT_EQ(cutWeight(g, side), 0);
}

TEST(Graph, EmptyGraph)
{
    Graph g(0);
    EXPECT_EQ(g.size(), 0);
    EXPECT_TRUE(g.edges().empty());
}

} // namespace
} // namespace qsurf::partition
