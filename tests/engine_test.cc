/**
 * @file
 * Engine-layer tests: registry lookup and duplicate-registration
 * errors, backend/simulator equivalence (the engine interface must
 * be a faithful adapter, not a reimplementation), and the uniform
 * Metrics record.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "common/logging.h"
#include "engine/registry.h"
#include "engine/sim.h"
#include "estimate/model.h"
#include "planar/planar.h"

namespace qsurf::engine {
namespace {

circuit::Circuit
smallCircuit()
{
    apps::GenOptions opts;
    opts.problem_size = 8;
    opts.max_iterations = 2;
    return circuit::decompose(
        apps::generate(apps::AppKind::SQ, opts));
}

WorkItem
itemFor(const circuit::Circuit *circ)
{
    WorkItem item;
    item.app = apps::AppKind::SQ;
    item.circuit = circ;
    item.config.code_distance = 5;
    item.config.seed = 7;
    return item;
}

/** Minimal backend for registration tests. */
class StubBackend : public Backend
{
  public:
    explicit StubBackend(std::string name) : label(std::move(name)) {}
    std::string name() const override { return label; }
    qec::CodeKind code() const override { return qec::CodeKind::Planar; }
    bool needsCircuit() const override { return false; }
    Metrics
    run(const WorkItem &) const override
    {
        Metrics m;
        m.backend = label;
        return m;
    }

  private:
    std::string label;
};

TEST(Registry, GlobalHasBuiltinBackends)
{
    Registry &r = Registry::global();
    for (const char *name :
         {backends::planar, backends::double_defect,
          backends::planar_model, backends::double_defect_model,
          backends::surgery_sim, backends::surgery_model,
          backends::hybrid_mixed}) {
        EXPECT_TRUE(r.contains(name)) << name;
        EXPECT_EQ(r.get(name).name(), name);
    }
    EXPECT_EQ(r.names().size(), 7u);
}

TEST(Registry, NamesAreSorted)
{
    auto names = Registry::global().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, UnknownNameIsFatalAndListsRegistered)
{
    try {
        Registry::global().get("no-such-backend");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("no-such-backend"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find(backends::planar),
                  std::string::npos);
    }
}

TEST(Registry, DuplicateRegistrationIsFatal)
{
    Registry r;
    r.add(std::make_unique<StubBackend>("stub"));
    EXPECT_THROW(r.add(std::make_unique<StubBackend>("stub")),
                 FatalError);
}

TEST(Registry, PrivateRegistriesAreIndependent)
{
    Registry r;
    registerBuiltinBackends(r);
    r.add(std::make_unique<StubBackend>("stub"));
    EXPECT_TRUE(r.contains("stub"));
    EXPECT_FALSE(Registry::global().contains("stub"));
}

TEST(Backend, DoubleDefectMatchesDirectSimulation)
{
    circuit::Circuit circ = smallCircuit();
    WorkItem item = itemFor(&circ);
    item.config.policy = 3;

    braid::BraidOptions opts;
    opts.code_distance = 5;
    opts.seed = 7;
    braid::BraidResult direct = braid::scheduleBraids(
        circ, braid::Policy::Criticality, opts);

    const Backend &b =
        Registry::global().get(backends::double_defect);
    Metrics m = b.run(item);
    EXPECT_EQ(m.schedule_cycles, direct.schedule_cycles);
    EXPECT_EQ(m.critical_path_cycles, direct.critical_path_cycles);
    EXPECT_DOUBLE_EQ(m.extra("mesh_utilization"),
                     direct.mesh_utilization);
    EXPECT_EQ(m.code, qec::CodeKind::DoubleDefect);
    EXPECT_EQ(m.code_distance, 5);
}

TEST(Backend, PlanarMatchesDirectSimulation)
{
    circuit::Circuit circ = smallCircuit();
    WorkItem item = itemFor(&circ);

    planar::PlanarOptions opts;
    opts.code_distance = 5;
    planar::PlanarResult direct = planar::runPlanar(circ, opts);

    const Backend &b = Registry::global().get(backends::planar);
    Metrics m = b.run(item);
    EXPECT_EQ(m.schedule_cycles, direct.schedule_cycles);
    EXPECT_EQ(m.critical_path_cycles, direct.critical_path_cycles);
    EXPECT_DOUBLE_EQ(m.extra("teleports"),
                     static_cast<double>(direct.teleports));
}

TEST(Backend, ModelMatchesDirectEstimate)
{
    WorkItem item;
    item.app = apps::AppKind::SQ;
    item.config.kq = 1e8;
    item.config.tech = qec::tech_points::futureOptimistic();

    estimate::ResourceModel model(apps::AppKind::SQ,
                                  item.config.tech);
    auto direct = model.estimate(qec::CodeKind::Planar, 1e8);

    const Backend &b = Registry::global().get(backends::planar_model);
    EXPECT_FALSE(b.needsCircuit());
    Metrics m = b.run(item);
    EXPECT_EQ(m.code_distance, direct.code_distance);
    EXPECT_DOUBLE_EQ(m.physical_qubits, direct.physical_qubits);
    EXPECT_DOUBLE_EQ(m.seconds, direct.seconds);
    EXPECT_DOUBLE_EQ(m.spaceTime(), direct.spaceTime());
}

TEST(Backend, PrepareRejectsMissingCircuit)
{
    WorkItem item;
    EXPECT_THROW(
        Registry::global().get(backends::planar).prepare(item),
        FatalError);
}

TEST(Backend, PrepareRejectsBadPolicy)
{
    circuit::Circuit circ = smallCircuit();
    WorkItem item = itemFor(&circ);
    item.config.policy = 99;
    EXPECT_THROW(
        Registry::global().get(backends::double_defect).prepare(item),
        FatalError);
}

TEST(Backend, ModelPrepareNeedsSizeOrCircuit)
{
    WorkItem item;
    EXPECT_THROW(
        Registry::global().get(backends::planar_model).prepare(item),
        FatalError);
    item.config.kq = 1e6;
    EXPECT_NO_THROW(
        Registry::global().get(backends::planar_model).prepare(item));
}

TEST(Metrics, ExtrasSetGetOverwrite)
{
    Metrics m;
    EXPECT_FALSE(m.has("x"));
    EXPECT_DOUBLE_EQ(m.extra("x", -1), -1);
    m.set("x", 2.5);
    EXPECT_TRUE(m.has("x"));
    EXPECT_DOUBLE_EQ(m.extra("x"), 2.5);
    m.set("x", 3.5);
    EXPECT_DOUBLE_EQ(m.extra("x"), 3.5);
    EXPECT_EQ(m.extras.size(), 1u);
}

TEST(Metrics, RatioAndSpaceTime)
{
    Metrics m;
    m.schedule_cycles = 200;
    m.critical_path_cycles = 100;
    m.physical_qubits = 10;
    m.seconds = 3;
    EXPECT_DOUBLE_EQ(m.ratio(), 2.0);
    EXPECT_DOUBLE_EQ(m.spaceTime(), 30.0);
    m.critical_path_cycles = 0;
    EXPECT_DOUBLE_EQ(m.ratio(), 0.0);
}

TEST(Seeding, MixSeedDecorrelatesIndices)
{
    EXPECT_NE(mixSeed(1, 0), mixSeed(1, 1));
    EXPECT_NE(mixSeed(1, 0), mixSeed(2, 0));
    // Deterministic.
    EXPECT_EQ(mixSeed(42, 17), mixSeed(42, 17));
}

TEST(WorkItem, ResolveDistanceHonorsOverride)
{
    circuit::Circuit circ = smallCircuit();
    WorkItem item = itemFor(&circ);
    EXPECT_EQ(item.resolveDistance(), 5);
    item.config.code_distance = 0;
    EXPECT_GE(item.resolveDistance(), 3);
}

TEST(ExpiryQueue, NextDeadlineIsEarliestScheduled)
{
    ExpiryQueue q;
    EXPECT_FALSE(q.nextDeadline().has_value());
    q.schedule(30, 1);
    q.schedule(10, 2);
    q.schedule(20, 3);
    ASSERT_TRUE(q.nextDeadline().has_value());
    EXPECT_EQ(*q.nextDeadline(), 10u);
    EXPECT_EQ(q.popRipe(10), std::optional<int>(2));
    EXPECT_EQ(*q.nextDeadline(), 20u);
}

TEST(FastForward, NoCandidatesSkipsToHorizon)
{
    // An event-free schedule must still terminate: with nothing to
    // wait for, the jump lands past the horizon so the caller's
    // max-cycles guard fires.
    FastForward ff;
    ff.begin(100);
    EXPECT_EQ(ff.skippable(1000), 899u);
}

TEST(FastForward, ExpiryBoundsTheJump)
{
    FastForward ff;
    ff.begin(100);
    ff.eventAt(150);
    // Iterations 101..149 are boring; the pass at 150 sees the
    // retirement (released routes, readied successors).
    EXPECT_EQ(ff.skippable(1000), 49u);

    // An event at the very next cycle means nothing to skip.
    ff.begin(100);
    ff.eventAt(101);
    EXPECT_EQ(ff.skippable(1000), 0u);
}

TEST(FastForward, StalledOpStopsOnEscalationThresholds)
{
    RouteClaimOptions route;
    route.adapt_timeout = 4;
    route.bfs_timeout = 8;

    // Fresh op (routed with wait 0, now 1): next behavior change is
    // the adapt_timeout crossing, where the pass at now+4 routes
    // with wait 4 and first tries the transposed geometry.
    FastForward ff;
    ff.begin(100);
    ff.stalledOp(0, 1, route, 16);
    EXPECT_EQ(ff.skippable(1000), 3u);

    // Past adapt, before bfs: stop on the bfs_timeout crossing.
    ff.begin(100);
    ff.stalledOp(4, 5, route, 16);
    EXPECT_EQ(ff.skippable(1000), 3u);

    // Fully escalated: only the drop threshold remains.
    ff.begin(100);
    ff.stalledOp(9, 10, route, 16);
    EXPECT_EQ(ff.skippable(1000), 5u);
}

TEST(FastForward, TightestCandidateWins)
{
    RouteClaimOptions route;
    route.adapt_timeout = 4;
    route.bfs_timeout = 8;

    FastForward ff;
    ff.begin(100);
    ff.eventAt(200);              // far retirement
    ff.stalledOp(9, 10, route, 16); // drop crossing in 6
    ff.stalledOp(0, 1, route, 16);  // adapt crossing in 4
    EXPECT_EQ(ff.skippable(1000), 3u);
}

TEST(FastForward, RecordsSkippedCycles)
{
    FastForward ff;
    EXPECT_EQ(ff.skipped(), 0u);
    ff.recordSkip(7);
    ff.recordSkip(5);
    EXPECT_EQ(ff.skipped(), 12u);
}

} // namespace
} // namespace qsurf::engine
