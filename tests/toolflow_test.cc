/**
 * @file
 * End-to-end toolflow tests: the full Figure-4 pipeline on generated
 * applications and on QASM source, plus report formatting.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "common/logging.h"
#include "toolflow/toolflow.h"

namespace qsurf::toolflow {
namespace {

circuit::Circuit
smallApp(apps::AppKind kind)
{
    apps::GenOptions opts;
    opts.problem_size = 8;
    opts.max_iterations = 2;
    return apps::generate(kind, opts);
}

TEST(Toolflow, RunsOnSerialApp)
{
    Report r = run(smallApp(apps::AppKind::GSE));
    EXPECT_EQ(r.app_name, "GSE");
    EXPECT_GT(r.counts.total, 0u);
    EXPECT_GE(r.code_distance, 3);
    EXPECT_GT(r.planar.schedule_cycles, 0u);
    EXPECT_GT(r.double_defect.schedule_cycles, 0u);
    EXPECT_GE(r.planar.cp_ratio, 1.0);
    EXPECT_GE(r.double_defect.cp_ratio, 1.0);
}

TEST(Toolflow, SmallAppsRecommendPlanar)
{
    // The paper's headline: at small computation sizes the smaller
    // planar tiles win the space-time product.
    Report r = run(smallApp(apps::AppKind::SQ));
    EXPECT_EQ(r.recommended(), qec::CodeKind::Planar);
    EXPECT_LT(r.planar.spaceTime(), r.double_defect.spaceTime());
}

TEST(Toolflow, DistanceRespectsTechnology)
{
    Config good, bad;
    good.tech.p_physical = 1e-8;
    bad.tech.p_physical = 1e-4;
    Report rg = run(smallApp(apps::AppKind::GSE), good);
    Report rb = run(smallApp(apps::AppKind::GSE), bad);
    EXPECT_LE(rg.code_distance, rb.code_distance)
        << "faultier technology needs a larger code distance";
}

TEST(Toolflow, ForceDistanceOverrides)
{
    Config cfg;
    cfg.force_distance = 9;
    Report r = run(smallApp(apps::AppKind::GSE), cfg);
    EXPECT_EQ(r.code_distance, 9);
}

TEST(Toolflow, PhysicalQubitsScaleWithCode)
{
    Report r = run(smallApp(apps::AppKind::SQ));
    // Double-defect tiles are twice planar, x the smaller planar
    // overhead factor: the ratio must be > 1.
    EXPECT_GT(r.double_defect.physical_qubits,
              r.planar.physical_qubits);
}

TEST(Toolflow, QasmEntryPointMatchesCircuitPath)
{
    Report r = runQasm(apps::sampleHierarchicalQasm());
    EXPECT_GT(r.counts.total, 0u);
    EXPECT_GT(r.planar.schedule_cycles, 0u);
}

TEST(Toolflow, BadQasmIsFatal)
{
    EXPECT_THROW(runQasm("qbit q[1]; BOGUS q[0];"),
                 qsurf::FatalError);
}

TEST(Toolflow, EmptyCircuitIsFatal)
{
    circuit::Circuit c(2);
    EXPECT_THROW(run(c), qsurf::FatalError);
}

TEST(Toolflow, FormatMentionsKeyMetrics)
{
    Report r = run(smallApp(apps::AppKind::GSE));
    std::string s = format(r);
    for (const char *needle :
         {"logical ops", "parallelism factor", "code distance",
          "planar", "double-defect", "space-time", "recommended"})
        EXPECT_NE(s.find(needle), std::string::npos) << needle;
}

TEST(Toolflow, PolicyChoiceAffectsDoubleDefectOnly)
{
    Config p0, p6;
    p0.policy = braid::Policy::ProgramOrder;
    p6.policy = braid::Policy::Combined;
    circuit::Circuit c = smallApp(apps::AppKind::IsingFull);
    Report r0 = run(c, p0);
    Report r6 = run(c, p6);
    EXPECT_EQ(r0.planar.schedule_cycles, r6.planar.schedule_cycles);
    EXPECT_LE(r6.double_defect.schedule_cycles,
              r0.double_defect.schedule_cycles);
}

} // namespace
} // namespace qsurf::toolflow
