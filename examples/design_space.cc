/**
 * @file
 * Design-space explorer: "I want to run application X with N logical
 * operations on technology with error rate pP — which surface code
 * should I build, and what will it cost?"
 *
 *   $ ./design_space [app] [log10_ops] [p_physical]
 *
 * e.g. ./design_space sq 12 1e-5
 *
 * One declarative sweep grid (both model backends at one size) on
 * the engine's sweep driver — the same machinery the figure benches
 * run on.
 */

#include <cmath>
#include <cstring>
#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "engine/sweep.h"
#include "estimate/crossover.h"

namespace {

using namespace qsurf;

apps::AppKind
parseApp(const char *name)
{
    if (!std::strcmp(name, "gse"))
        return apps::AppKind::GSE;
    if (!std::strcmp(name, "sq"))
        return apps::AppKind::SQ;
    if (!std::strcmp(name, "sha1"))
        return apps::AppKind::SHA1;
    if (!std::strcmp(name, "im-semi"))
        return apps::AppKind::IsingSemi;
    if (!std::strcmp(name, "im-full"))
        return apps::AppKind::IsingFull;
    fatal("unknown app '", name,
          "' (expected gse|sq|sha1|im-semi|im-full)");
}

void
describe(const engine::Metrics &m, const char *label)
{
    Table t(label);
    t.header({"metric", "value"});
    t.addRow("code distance d", m.code_distance);
    t.addRow("logical qubits", Table::num(m.extra("logical_qubits")));
    t.addRow("total tiles (data+factories)",
             Table::num(m.extra("total_tiles")));
    t.addRow("physical qubits", Table::num(m.physical_qubits));
    t.addRow("congestion inflation",
             Table::fixed(m.extra("congestion_inflation"), 2));
    t.addRow("execution time (s)", Table::num(m.seconds));
    t.addRow("space-time (qubit-seconds)", Table::num(m.spaceTime()));
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsurf;

    apps::AppKind kind =
        argc > 1 ? parseApp(argv[1]) : apps::AppKind::SQ;
    double log_ops = argc > 2 ? std::atof(argv[2]) : 10.0;
    double pp = argc > 3 ? std::atof(argv[3]) : 1e-6;
    double kq = std::pow(10.0, log_ops);

    engine::SweepGrid grid;
    grid.apps = {{kind, {}, ""}};
    grid.backends = {engine::backends::planar_model,
                     engine::backends::double_defect_model};
    grid.sizes = {kq};
    grid.base.tech.p_physical = pp;

    std::cout << "Application " << apps::appSpec(kind).name << ", "
              << Table::num(kq) << " logical ops, pP = "
              << Table::num(pp) << "\n\n";

    auto results = engine::SweepDriver().run(grid);
    const engine::Metrics &pl = results[0].metrics;
    const engine::Metrics &dd = results[1].metrics;

    describe(pl, "Planar code on the Multi-SIMD architecture");
    describe(dd, "Double-defect code on the tiled architecture");

    double spacetime = dd.spaceTime() / pl.spaceTime();
    std::cout << "qubits x time ratio (double-defect / planar): "
              << Table::fixed(spacetime, 2) << " -> build the "
              << (spacetime > 1 ? "PLANAR" : "DOUBLE-DEFECT")
              << " machine\n";

    auto x = estimate::crossoverSize(
        estimate::ResourceModel(kind, grid.base.tech));
    std::cout << "favorability cross-over for this app/technology: "
              << (x ? Table::num(*x) : std::string("beyond 1e24"))
              << " logical ops\n";
    return 0;
}
