/**
 * @file
 * Design-space explorer: "I want to run application X with N logical
 * operations on technology with error rate pP — which surface code
 * should I build, and what will it cost?"
 *
 *   $ ./design_space [app] [log10_ops] [p_physical]
 *
 * e.g. ./design_space sq 12 1e-5
 */

#include <cmath>
#include <cstring>
#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "estimate/crossover.h"

namespace {

using namespace qsurf;

apps::AppKind
parseApp(const char *name)
{
    if (!std::strcmp(name, "gse"))
        return apps::AppKind::GSE;
    if (!std::strcmp(name, "sq"))
        return apps::AppKind::SQ;
    if (!std::strcmp(name, "sha1"))
        return apps::AppKind::SHA1;
    if (!std::strcmp(name, "im-semi"))
        return apps::AppKind::IsingSemi;
    if (!std::strcmp(name, "im-full"))
        return apps::AppKind::IsingFull;
    fatal("unknown app '", name,
          "' (expected gse|sq|sha1|im-semi|im-full)");
}

void
describe(const estimate::ResourceEstimate &e, const char *label)
{
    Table t(label);
    t.header({"metric", "value"});
    t.addRow("code distance d", e.code_distance);
    t.addRow("logical qubits", Table::num(e.logical_qubits));
    t.addRow("total tiles (data+factories)",
             Table::num(e.total_tiles));
    t.addRow("physical qubits", Table::num(e.physical_qubits));
    t.addRow("congestion inflation",
             Table::fixed(e.congestion_inflation, 2));
    t.addRow("execution time (s)", Table::num(e.seconds));
    t.addRow("space-time (qubit-seconds)", Table::num(e.spaceTime()));
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsurf;

    apps::AppKind kind =
        argc > 1 ? parseApp(argv[1]) : apps::AppKind::SQ;
    double log_ops = argc > 2 ? std::atof(argv[2]) : 10.0;
    double pp = argc > 3 ? std::atof(argv[3]) : 1e-6;
    double kq = std::pow(10.0, log_ops);

    qec::Technology tech;
    tech.p_physical = pp;
    estimate::ResourceModel model(kind, tech);

    std::cout << "Application " << apps::appSpec(kind).name << ", "
              << Table::num(kq) << " logical ops, pP = "
              << Table::num(pp) << "\n\n";

    describe(model.estimate(qec::CodeKind::Planar, kq),
             "Planar code on the Multi-SIMD architecture");
    describe(model.estimate(qec::CodeKind::DoubleDefect, kq),
             "Double-defect code on the tiled architecture");

    auto ratios = model.ratios(kq);
    std::cout << "qubits x time ratio (double-defect / planar): "
              << Table::fixed(ratios.spacetime, 2) << " -> build the "
              << (ratios.spacetime > 1 ? "PLANAR" : "DOUBLE-DEFECT")
              << " machine\n";

    auto x = estimate::crossoverSize(model);
    std::cout << "favorability cross-over for this app/technology: "
              << (x ? Table::num(*x) : std::string("beyond 1e24"))
              << " logical ops\n";
    return 0;
}
