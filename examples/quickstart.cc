/**
 * @file
 * Quickstart: compile a small hierarchical QASM program through the
 * full toolflow and compare the two error-correction backends.
 *
 *   $ ./quickstart
 *
 * This exercises the whole public API surface in ~20 lines: parse ->
 * flatten -> decompose -> code-distance selection -> braid
 * scheduling (double-defect) and Multi-SIMD + EPR pipelining
 * (planar) -> comparison report.
 */

#include <iostream>

#include "apps/apps.h"
#include "toolflow/toolflow.h"

int
main()
{
    using namespace qsurf;

    // A toy majority-vote program with nested modules (see
    // apps::sampleHierarchicalQasm for the source text).
    std::string source = apps::sampleHierarchicalQasm();
    std::cout << "Input program:\n" << source << "\n";

    // Run the full Figure-4 toolflow with default settings:
    // pP = 1e-5 superconducting technology, braid Policy 6,
    // EPR lookahead window of 32 steps.
    toolflow::Config config;
    toolflow::Report report = toolflow::runQasm(source, config);

    std::cout << toolflow::format(report);

    std::cout << "\nTry: change config.tech.p_physical or "
                 "config.policy and watch the\nrecommendation and "
                 "schedule lengths move.\n";
    return 0;
}
