/**
 * @file
 * Compile-service demo: a long-lived in-process compile server.
 *
 *   $ ./compile_service
 *
 * Starts a CompileService, submits a mixed request stream — the
 * same programs repeatedly, across backends, layout objectives and
 * seeds — and prints each response with its prepare/run wall-time
 * split.  Requests after the first for any (program, layout)
 * identity hit the shared PrepareCache, so their prepare column
 * collapses to ~0 while the metrics stay bit-identical to a cold
 * compile; the closing stats line shows the hit ratio and how many
 * queued requests were batched onto one artifact fetch.
 */

#include <future>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "engine/registry.h"
#include "obs/metrics.h"
#include "service/service.h"

int
main()
{
    using namespace qsurf;

    service::CompileService svc;
    std::cout << "compile service up, " << svc.threads()
              << " worker threads\n\n";

    // A mixed stream: two generated apps, two simulation backends,
    // two layout objectives — each combination submitted twice, so
    // the second round is fully warm.
    std::vector<service::CompileRequest> stream;
    for (int round = 0; round < 2; ++round)
        for (auto kind : {apps::AppKind::SQ, apps::AppKind::GSE})
            for (const char *backend :
                 {engine::backends::surgery_sim,
                  engine::backends::hybrid_mixed})
                for (int objective : {0, 2}) {
                    service::CompileRequest req;
                    req.app = kind;
                    req.gen = {8, 2};
                    req.backend = backend;
                    req.config.code_distance = 3;
                    req.config.layout_objective = objective;
                    stream.push_back(req);
                }

    // Submit everything up front (the service batches queued
    // requests that share a prepare identity), then collect.
    std::vector<std::future<service::CompileResponse>> futures;
    for (const service::CompileRequest &req : stream)
        futures.push_back(svc.submit(req));

    Table t("Compile stream (two rounds of the same requests)");
    t.header({"app", "backend", "obj", "cycles", "prep ms",
              "run ms", "batch"});
    for (size_t i = 0; i < futures.size(); ++i) {
        service::CompileResponse r = futures[i].get();
        if (!r.ok()) {
            std::cerr << "request " << i << " failed: " << r.error
                      << "\n";
            return 1;
        }
        t.addRow(apps::appSpec(stream[i].app).name,
                 stream[i].backend,
                 stream[i].config.layout_objective,
                 r.metrics.schedule_cycles,
                 Table::fixed(r.prepare_ms, 2),
                 Table::fixed(r.run_ms, 2), r.batch_size);
    }
    t.print(std::cout);

    service::ServiceStats stats = svc.stats();
    std::cout << "\n" << stats.requests << " requests in "
              << stats.batches << " batches ("
              << stats.batched_requests
              << " batched); cache: " << stats.cache.hits
              << " hits / " << stats.cache.misses
              << " misses (hit ratio "
              << Table::fixed(stats.cache.hitRatio(), 2) << "), "
              << stats.cache.entries << " entries\n";
    // Service telemetry: the "service.*" stream metrics recorded
    // live by submit() and the workers, plus the point-in-time
    // queue/cache gauges exportTelemetry() publishes.
    svc.exportTelemetry();
    obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    Table tele("Service telemetry");
    tele.header({"histogram", "count", "mean", "p50", "p95"});
    for (const auto &[name, h] : snap.histograms) {
        if (name.compare(0, 8, "service.") != 0)
            continue;
        tele.addRow(name, h.count, Table::fixed(h.mean(), 2),
                    Table::fixed(h.p50, 2), Table::fixed(h.p95, 2));
    }
    std::cout << "\n";
    tele.print(std::cout);
    std::cout << "gauges:";
    for (const auto &[name, v] : snap.gauges)
        if (name.compare(0, 6, "cache.") == 0
                ? name.find(".shard") == std::string::npos
                : name == "service.queue.depth")
            std::cout << " " << name << "=" << v;
    std::cout << "\n";

    std::cout << "\nTry: submit your own circuit by setting "
                 "CompileRequest::circuit, or point\nseveral "
                 "clients at one service and watch the batch "
                 "column grow.\n";
    return 0;
}
