/**
 * @file
 * Compile-service demo: a long-lived compile server, in-process or
 * over the wire.
 *
 *   $ ./compile_service                        # in-process service
 *   $ ./compile_server --socket=qsurf.sock &   # ... then:
 *   $ ./compile_service --connect=qsurf.sock   # framed-protocol client
 *   $ ./compile_service --connect=127.0.0.1:7700   # ... over TCP
 *
 * Submits a mixed request stream — the same programs repeatedly,
 * across backends, layout objectives and seeds — and prints each
 * response with its prepare/run wall-time split.  Requests after the
 * first for any (program, layout) identity hit the server's shared
 * PrepareCache, so their prepare column collapses to ~0 while the
 * metrics stay bit-identical to a cold compile; the closing stats
 * show the hit ratio and how many queued requests were batched onto
 * one artifact fetch.  In --connect mode the identical stream goes
 * through wire frames instead of function calls (and finishes by
 * asking the server to shut down), demonstrating that the two paths
 * return the same metrics.
 */

#include <future>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "engine/registry.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "service/wire.h"

namespace {

using namespace qsurf;
namespace wire = qsurf::service::wire;

/** The demo request stream: two rounds so round two is fully warm. */
std::vector<service::CompileRequest>
requestStream()
{
    std::vector<service::CompileRequest> stream;
    for (int round = 0; round < 2; ++round)
        for (auto kind : {apps::AppKind::SQ, apps::AppKind::GSE})
            for (const char *backend :
                 {engine::backends::surgery_sim,
                  engine::backends::hybrid_mixed})
                for (int objective : {0, 2}) {
                    service::CompileRequest req;
                    req.app = kind;
                    req.gen = {8, 2};
                    req.backend = backend;
                    req.config.code_distance = 3;
                    req.config.layout_objective = objective;
                    stream.push_back(req);
                }
    return stream;
}

/** Run the stream against a remote compile_server and shut it down.
 *  @p spec is a Unix-socket path or "host:port". */
int
runClient(const std::string &spec)
{
    // The server may still be binding its socket (or coming up on
    // another host); capped exponential backoff covers both.
    wire::RetryPolicy policy;
    policy.max_attempts = 10;
    int fd = wire::connectWithRetry(spec, policy);
    if (fd < 0) {
        std::cerr << "cannot connect to '" << spec << "'\n";
        return 1;
    }
    wire::Client client(fd, fd);
    std::cout << "connected to compile server at " << spec
              << "\n\n";

    std::vector<service::CompileRequest> stream = requestStream();
    Table t("Compile stream over the wire (two rounds)");
    t.header({"app", "backend", "obj", "cycles", "prep ms",
              "run ms", "batch"});
    for (size_t i = 0; i < stream.size(); ++i) {
        service::CompileResponse r = client.compile(stream[i]);
        if (!r.ok()) {
            std::cerr << "request " << i << " failed: " << r.error
                      << "\n";
            return 1;
        }
        t.addRow(apps::appSpec(stream[i].app).name,
                 stream[i].backend,
                 stream[i].config.layout_objective,
                 r.metrics.schedule_cycles,
                 Table::fixed(r.prepare_ms, 2),
                 Table::fixed(r.run_ms, 2), r.batch_size);
    }
    t.print(std::cout);

    // A damaged-fabric request: the defect spec crosses the wire
    // and must come back priced.  The defect extras only exist when
    // the server saw the spec, so a codec that dropped the field
    // fails here rather than silently compiling a perfect mesh.
    service::CompileRequest damaged;
    damaged.app = apps::AppKind::SQ;
    damaged.gen = {8, 2};
    damaged.backend = engine::backends::surgery_sim;
    damaged.config.code_distance = 3;
    damaged.config.defect_spec =
        "{\"dead_tiles\": [[0, 0], [1, 1]], "
        "\"disabled_links\": [[2, 0, 2, 1]]}";
    service::CompileResponse dr = client.compile(damaged);
    if (!dr.ok()) {
        std::cerr << "defect-spec request failed: " << dr.error
                  << "\n";
        return 1;
    }
    if (dr.metrics.extra("defective_nodes") <= 0
        || dr.metrics.extra("defective_links") <= 0) {
        std::cerr << "defect spec did not survive the wire round "
                     "trip\n";
        return 1;
    }
    std::cout << "\ndefect-spec round trip: "
              << dr.metrics.extra("defective_nodes")
              << " dead nodes, "
              << dr.metrics.extra("defective_links")
              << " disabled links priced into "
              << dr.metrics.schedule_cycles << " cycles\n";

    std::cout << "\nserver telemetry: " << client.telemetry()
              << "\n";
    client.shutdown();
    std::cout << "server shut down cleanly\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--connect=", 0) == 0)
            return runClient(arg.substr(10));
        std::cerr << "usage: " << argv[0]
                  << " [--connect=PATH | --connect=HOST:PORT]\n";
        return 2;
    }

    service::CompileService svc;
    std::cout << "compile service up, " << svc.threads()
              << " worker threads\n\n";

    // Submit everything up front (the service batches queued
    // requests that share a prepare identity), then collect.
    std::vector<service::CompileRequest> stream = requestStream();
    std::vector<std::future<service::CompileResponse>> futures;
    for (const service::CompileRequest &req : stream)
        futures.push_back(svc.submit(req));

    Table t("Compile stream (two rounds of the same requests)");
    t.header({"app", "backend", "obj", "cycles", "prep ms",
              "run ms", "batch"});
    for (size_t i = 0; i < futures.size(); ++i) {
        service::CompileResponse r = futures[i].get();
        if (!r.ok()) {
            std::cerr << "request " << i << " failed: " << r.error
                      << "\n";
            return 1;
        }
        t.addRow(apps::appSpec(stream[i].app).name,
                 stream[i].backend,
                 stream[i].config.layout_objective,
                 r.metrics.schedule_cycles,
                 Table::fixed(r.prepare_ms, 2),
                 Table::fixed(r.run_ms, 2), r.batch_size);
    }
    t.print(std::cout);

    service::ServiceStats stats = svc.stats();
    std::cout << "\n" << stats.requests << " requests in "
              << stats.batches << " batches ("
              << stats.batched_requests
              << " batched); cache: " << stats.cache.hits
              << " hits / " << stats.cache.misses
              << " misses (hit ratio "
              << Table::fixed(stats.cache.hitRatio(), 2) << "), "
              << stats.cache.entries << " entries\n";
    // Service telemetry: the "service.*" stream metrics recorded
    // live by submit() and the workers, plus the point-in-time
    // queue/cache gauges exportTelemetry() publishes.
    svc.exportTelemetry();
    obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    Table tele("Service telemetry");
    tele.header({"histogram", "count", "mean", "p50", "p95"});
    for (const auto &[name, h] : snap.histograms) {
        if (name.compare(0, 8, "service.") != 0)
            continue;
        tele.addRow(name, h.count, Table::fixed(h.mean(), 2),
                    Table::fixed(h.p50, 2), Table::fixed(h.p95, 2));
    }
    std::cout << "\n";
    tele.print(std::cout);
    std::cout << "gauges:";
    for (const auto &[name, v] : snap.gauges)
        if (name.compare(0, 6, "cache.") == 0
                ? name.find(".shard") == std::string::npos
                : name == "service.queue.depth")
            std::cout << " " << name << "=" << v;
    std::cout << "\n";

    std::cout << "\nTry: submit your own circuit by setting "
                 "CompileRequest::circuit, or point\nseveral "
                 "clients at one service and watch the batch "
                 "column grow.\n";
    return 0;
}
