/**
 * @file
 * Schema checker for the observability sinks — the CI gate behind
 * the traced smoke runs.
 *
 *   $ ./obs_check trace trace.json
 *   $ ./obs_check heatmap trace.heatmap.json
 *   $ ./obs_check metrics metrics.json
 *
 * Parses the file with the common JSON parser and validates the
 * structural invariants of the named sink (Chrome trace-event
 * shape, heatmap link bounds, histogram ordering).  Prints one
 * summary line and exits 0 when valid, 1 with a diagnostic when
 * not.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/logging.h"

namespace {

using qsurf::JsonValue;

std::string fail_reason;

bool
fail(const std::string &why)
{
    if (fail_reason.empty())
        fail_reason = why;
    return false;
}

bool
isUint(const JsonValue *v)
{
    return v && v->isNumber() && v->num >= 0;
}

bool
checkTrace(const JsonValue &root)
{
    if (!root.isObject())
        return fail("root is not an object");
    const JsonValue *events = root.find("traceEvents");
    if (!events || !events->isArray())
        return fail("missing traceEvents array");
    size_t real_events = 0;
    for (size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue &e = events->items[i];
        std::string at = "traceEvents[" + std::to_string(i) + "]";
        if (!e.isObject())
            return fail(at + " is not an object");
        const JsonValue *ph = e.find("ph");
        if (!ph || !ph->isString())
            return fail(at + " has no ph");
        const JsonValue *name = e.find("name");
        if (!name || !name->isString())
            return fail(at + " has no name");
        if (!isUint(e.find("pid")))
            return fail(at + " has no pid");
        if (ph->str == "M")
            continue; // Metadata: process/thread names.
        ++real_events;
        if (!e.find("tid") || !e.find("tid")->isNumber())
            return fail(at + " has no tid");
        if (!e.find("ts") || !e.find("ts")->isNumber())
            return fail(at + " has no ts");
        if (ph->str == "X") {
            if (!isUint(e.find("dur")))
                return fail(at + " complete event has no dur");
        } else if (ph->str == "i") {
            const JsonValue *scope = e.find("s");
            if (!scope || !scope->isString())
                return fail(at + " instant event has no scope");
        } else {
            return fail(at + " has unexpected ph '" + ph->str + "'");
        }
        const JsonValue *args = e.find("args");
        if (!args || !args->isObject())
            return fail(at + " has no args");
    }
    if (real_events == 0)
        return fail("trace contains no events");
    std::cout << "trace OK: " << real_events << " events\n";
    return true;
}

bool
checkHeatmap(const JsonValue &root)
{
    if (!root.isObject())
        return fail("root is not an object");
    const JsonValue *runs = root.find("runs");
    if (!runs || !runs->isArray())
        return fail("missing runs array");
    size_t links = 0;
    size_t defects = 0;
    double busy_total = 0;
    for (size_t r = 0; r < runs->items.size(); ++r) {
        const JsonValue &run = runs->items[r];
        std::string at = "runs[" + std::to_string(r) + "]";
        if (!run.isObject())
            return fail(at + " is not an object");
        const JsonValue *w = run.find("width");
        const JsonValue *h = run.find("height");
        if (!isUint(w) || w->num < 1 || !isUint(h) || h->num < 1)
            return fail(at + " has bad mesh dimensions");
        const JsonValue *bucket = run.find("bucket_cycles");
        if (!isUint(bucket) || bucket->num < 1)
            return fail(at + " has bad bucket_cycles");
        const JsonValue *backend = run.find("backend");
        if (!backend || !backend->isString())
            return fail(at + " has no backend");
        const JsonValue *dead_nodes = run.find("defective_nodes");
        if (!dead_nodes || !dead_nodes->isArray())
            return fail(at + " has no defective_nodes array");
        for (size_t n = 0; n < dead_nodes->items.size(); ++n) {
            const JsonValue &node = dead_nodes->items[n];
            std::string nat = at + ".defective_nodes["
                + std::to_string(n) + "]";
            const JsonValue *x = node.find("x");
            const JsonValue *y = node.find("y");
            if (!isUint(x) || x->num >= w->num || !isUint(y)
                || y->num >= h->num)
                return fail(nat + " is out of mesh bounds");
            ++defects;
        }
        const JsonValue *dead_links = run.find("defective_links");
        if (!dead_links || !dead_links->isArray())
            return fail(at + " has no defective_links array");
        for (size_t l = 0; l < dead_links->items.size(); ++l) {
            const JsonValue &link = dead_links->items[l];
            std::string lat = at + ".defective_links["
                + std::to_string(l) + "]";
            const JsonValue *x = link.find("x");
            const JsonValue *y = link.find("y");
            const JsonValue *dir = link.find("dir");
            if (!isUint(x) || x->num >= w->num || !isUint(y)
                || y->num >= h->num)
                return fail(lat + " is out of mesh bounds");
            if (!isUint(dir) || dir->num > 1)
                return fail(lat + " has bad dir");
            ++defects;
        }
        const JsonValue *ls = run.find("links");
        if (!ls || !ls->isArray())
            return fail(at + " has no links array");
        for (size_t l = 0; l < ls->items.size(); ++l) {
            const JsonValue &link = ls->items[l];
            std::string lat = at + ".links[" + std::to_string(l)
                + "]";
            const JsonValue *x = link.find("x");
            const JsonValue *y = link.find("y");
            const JsonValue *dir = link.find("dir");
            if (!isUint(x) || x->num >= w->num || !isUint(y)
                || y->num >= h->num)
                return fail(lat + " is out of mesh bounds");
            if (!isUint(dir) || dir->num > 1)
                return fail(lat + " has bad dir");
            const JsonValue *busy = link.find("busy");
            if (!busy || !busy->isArray() || busy->items.empty())
                return fail(lat + " has no busy buckets");
            double total = 0;
            for (const JsonValue &b : busy->items) {
                if (!b.isNumber() || b.num < 0)
                    return fail(lat + " has a bad busy value");
                total += b.num;
            }
            if (total <= 0)
                return fail(lat + " is all-zero (should be "
                                  "trimmed)");
            busy_total += total;
            ++links;
        }
    }
    std::cout << "heatmap OK: " << runs->items.size() << " runs, "
              << links << " busy links, " << busy_total
              << " link-busy cycles, " << defects
              << " defective resources\n";
    return true;
}

bool
checkMetrics(const JsonValue &root)
{
    if (!root.isObject())
        return fail("root is not an object");
    for (const char *section : {"counters", "gauges", "histograms"}) {
        const JsonValue *s = root.find(section);
        if (!s || !s->isObject())
            return fail(std::string("missing ") + section
                        + " object");
    }
    for (const auto &[name, v] : root.find("counters")->members)
        if (!v.isNumber() || v.num < 0)
            return fail("counter '" + name + "' is not a "
                                             "non-negative number");
    for (const auto &[name, v] : root.find("gauges")->members)
        if (!v.isNumber())
            return fail("gauge '" + name + "' is not a number");
    const JsonValue *hists = root.find("histograms");
    for (const auto &[name, h] : hists->members) {
        if (!h.isObject())
            return fail("histogram '" + name
                        + "' is not an object");
        for (const char *field : {"count", "sum", "mean", "min",
                                  "max", "p50", "p95", "p99"}) {
            const JsonValue *f = h.find(field);
            if (!f || !f->isNumber())
                return fail("histogram '" + name + "' misses "
                            + field);
        }
        if (h.find("count")->num < 1)
            return fail("histogram '" + name + "' has count < 1");
        double p50 = h.find("p50")->num;
        double p95 = h.find("p95")->num;
        double p99 = h.find("p99")->num;
        double max = h.find("max")->num;
        if (!(p50 <= p95 && p95 <= p99 && p99 <= max))
            return fail("histogram '" + name
                        + "' percentiles are out of order");
    }
    std::cout << "metrics OK: "
              << root.find("counters")->members.size()
              << " counters, "
              << root.find("gauges")->members.size() << " gauges, "
              << hists->members.size() << " histograms\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr
            << "usage: obs_check <trace|heatmap|metrics> <file>\n";
        return 2;
    }
    std::string kind = argv[1];
    std::ifstream in(argv[2]);
    if (!in) {
        std::cerr << "cannot open " << argv[2] << "\n";
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    bool ok = false;
    try {
        JsonValue root = qsurf::parseJson(buf.str());
        if (kind == "trace")
            ok = checkTrace(root);
        else if (kind == "heatmap")
            ok = checkHeatmap(root);
        else if (kind == "metrics")
            ok = checkMetrics(root);
        else {
            std::cerr << "unknown sink kind '" << kind << "'\n";
            return 2;
        }
    } catch (const qsurf::FatalError &e) {
        fail_reason = e.what();
    }
    if (!ok) {
        std::cerr << kind << " check failed: " << fail_reason
                  << "\n";
        return 1;
    }
    return 0;
}
