/**
 * @file
 * Out-of-process compile server speaking the framed wire protocol.
 *
 *   $ ./compile_server --socket=qsurf.sock      # Unix socket server
 *   $ ./compile_server --tcp=127.0.0.1:7700     # TCP server
 *   $ ./compile_server --stdio                  # serve stdin/stdout
 *   $ ./compile_server --sweep-worker --tcp=0.0.0.0:7701
 *                                               # remote sweep worker
 *
 * Wraps a CompileService in wire::serveConnection(): clients connect
 * (examples/compile_service --connect=qsurf.sock or
 * --connect=host:port), exchange framed CompileRequests/Responses,
 * query telemetry, and can shut the server down with a Shutdown
 * frame.  Socket modes serve every connection on its own thread, so
 * one slow or dead client never blocks the others; a client that
 * vanishes mid-exchange or sends a corrupt frame costs exactly its
 * own connection (counted in the aggregate stats printed at exit).
 * Stdio mode serves exactly one connection over pipes (the "spawn a
 * compiler child" integration shape — no socket files involved).
 *
 * --sweep-worker turns the process into a remote shard worker for
 * runShardedSweep() (src/service/shard.h): it serves one sweep
 * fleet's worth of ShardAssign/Row/Done traffic — the grid arrives
 * on the wire, nothing is shared with the parent — and exits when a
 * parent finishes with an orderly Shutdown.  TCP with port 0 binds
 * an ephemeral port and prints it, so scripts can scrape the
 * "listening on" line instead of guessing.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/logging.h"
#include "service/service.h"
#include "service/shard.h"
#include "service/wire.h"

namespace wire = qsurf::service::wire;

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--socket=PATH | --tcp=HOST:PORT | --stdio]"
                 " [--sweep-worker] [--threads=N]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsurf;

    std::string socket_path = "qsurf-compile.sock";
    std::string tcp_spec;
    bool stdio = false;
    bool sweep_worker = false;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0)
            socket_path = arg.substr(9);
        else if (arg.rfind("--tcp=", 0) == 0)
            tcp_spec = arg.substr(6);
        else if (arg == "--stdio")
            stdio = true;
        else if (arg == "--sweep-worker")
            sweep_worker = true;
        else if (arg.rfind("--threads=", 0) == 0)
            threads = std::atoi(arg.c_str() + 10);
        else
            return usage(argv[0]);
    }
    if (stdio && (sweep_worker || !tcp_spec.empty()))
        return usage(argv[0]);

    // A vanishing client must fail the one write, not the server.
    std::signal(SIGPIPE, SIG_IGN);

    try {
        if (stdio) {
            service::CompileService::Options opts;
            opts.num_threads = threads;
            service::CompileService svc(opts);
            wire::ServeStats stats =
                wire::serveConnection(svc, 0, 1);
            std::cerr << "compile_server: served " << stats.requests
                      << " requests over stdio\n";
            return 0;
        }

        // One transport behind two listener types.
        std::unique_ptr<wire::UnixListener> unix_listener;
        std::unique_ptr<wire::TcpListener> tcp_listener;
        if (!tcp_spec.empty()) {
            tcp_listener =
                std::make_unique<wire::TcpListener>(tcp_spec);
            std::cerr << "compile_server: listening on tcp port "
                      << tcp_listener->port()
                      << (sweep_worker ? " (sweep worker)" : "")
                      << "\n";
        } else {
            unix_listener =
                std::make_unique<wire::UnixListener>(socket_path);
            std::cerr << "compile_server: listening on "
                      << socket_path
                      << (sweep_worker ? " (sweep worker)" : "")
                      << "\n";
        }
        auto acceptClient = [&] {
            return tcp_listener ? tcp_listener->accept()
                                : unix_listener->accept();
        };
        auto stopListening = [&] {
            if (tcp_listener)
                tcp_listener->shutdown();
            else
                unix_listener->shutdown();
        };

        if (sweep_worker) {
            // Sweep fleets are serial per worker: one parent drives
            // this process at a time, and an orderly Shutdown means
            // its sweep is complete — exit so supervising scripts
            // see completion.  A parent that vanishes mid-slice
            // just ends that connection; the next parent can dial
            // in fresh.
            for (;;) {
                int fd = acceptClient();
                if (fd < 0)
                    break;
                service::SweepWorkerEnv env;
                env.base.num_threads = threads;
                bool orderly = service::serveSweepWorker(fd, env);
                ::close(fd);
                if (orderly) {
                    std::cerr << "compile_server: sweep complete, "
                                 "shutting down\n";
                    break;
                }
                std::cerr << "compile_server: sweep parent "
                             "vanished; awaiting the next one\n";
            }
            return 0;
        }

        service::CompileService::Options opts;
        opts.num_threads = threads;
        service::CompileService svc(opts);
        std::cerr << "compile_server: " << svc.threads()
                  << " worker threads\n";

        std::mutex stats_mutex;
        wire::ServeStats totals;
        std::atomic<bool> stopping{false};
        std::vector<std::thread> connections;
        for (;;) {
            int client = acceptClient();
            if (client < 0)
                break; // stopListening() unblocked us.
            connections.emplace_back([&, client] {
                wire::ServeStats stats;
                try {
                    stats =
                        wire::serveConnection(svc, client, client);
                } catch (const FatalError &e) {
                    // One broken client never takes the server
                    // down.
                    std::cerr
                        << "compile_server: connection failed: "
                        << e.what() << "\n";
                }
                ::close(client);
                {
                    std::lock_guard<std::mutex> lock(stats_mutex);
                    totals.frames += stats.frames;
                    totals.requests += stats.requests;
                    totals.errors += stats.errors;
                    totals.corrupt_frames += stats.corrupt_frames;
                    totals.peer_gone |= stats.peer_gone;
                    totals.shutdown |= stats.shutdown;
                }
                if (stats.peer_gone)
                    std::cerr << "compile_server: client vanished "
                                 "mid-session; connection dropped\n";
                if (stats.shutdown && !stopping.exchange(true))
                    stopListening();
            });
        }
        for (std::thread &t : connections)
            t.join();
        std::cerr << "compile_server: shutdown requested; served "
                  << totals.requests << " requests ("
                  << totals.errors << " errors, "
                  << totals.corrupt_frames << " corrupt frames)\n";
    } catch (const FatalError &e) {
        std::cerr << "compile_server: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
