/**
 * @file
 * Out-of-process compile server speaking the framed wire protocol.
 *
 *   $ ./compile_server --socket=qsurf.sock     # Unix socket server
 *   $ ./compile_server --stdio                 # serve stdin/stdout
 *
 * Wraps a CompileService in wire::serveConnection(): clients connect
 * (examples/compile_service --connect=qsurf.sock), exchange framed
 * CompileRequests/Responses, query telemetry, and can shut the
 * server down with a Shutdown frame.  Socket mode serves connections
 * one after another until a client asks for shutdown; stdio mode
 * serves exactly one connection over pipes (the "spawn a compiler
 * child" integration shape — no socket files involved).
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/logging.h"
#include "service/service.h"
#include "service/wire.h"

namespace wire = qsurf::service::wire;

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--socket=PATH | --stdio] [--threads=N]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsurf;

    std::string socket_path = "qsurf-compile.sock";
    bool stdio = false;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0)
            socket_path = arg.substr(9);
        else if (arg == "--stdio")
            stdio = true;
        else if (arg.rfind("--threads=", 0) == 0)
            threads = std::atoi(arg.c_str() + 10);
        else
            return usage(argv[0]);
    }

    // A vanishing client must fail the one write, not the server.
    std::signal(SIGPIPE, SIG_IGN);

    service::CompileService::Options opts;
    opts.num_threads = threads;
    service::CompileService svc(opts);

    try {
        if (stdio) {
            wire::ServeStats stats =
                wire::serveConnection(svc, 0, 1);
            std::cerr << "compile_server: served " << stats.requests
                      << " requests over stdio\n";
            return 0;
        }

        wire::UnixListener listener(socket_path);
        std::cerr << "compile_server: listening on " << socket_path
                  << " with " << svc.threads()
                  << " worker threads\n";
        for (;;) {
            int client = listener.accept();
            wire::ServeStats stats;
            try {
                stats = wire::serveConnection(svc, client, client);
            } catch (const FatalError &e) {
                // One broken client never takes the server down.
                std::cerr << "compile_server: connection failed: "
                          << e.what() << "\n";
                ::close(client);
                continue;
            }
            ::close(client);
            std::cerr << "compile_server: connection done ("
                      << stats.requests << " requests, "
                      << stats.errors << " errors)\n";
            if (stats.shutdown) {
                std::cerr << "compile_server: shutdown requested\n";
                break;
            }
        }
    } catch (const FatalError &e) {
        std::cerr << "compile_server: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
