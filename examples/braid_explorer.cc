/**
 * @file
 * Braid-policy explorer: generate one of the paper's workloads and
 * sweep the seven braid prioritization policies of Section 6.3,
 * showing how event interleaving, interaction-aware layout and
 * priority heuristics close the gap to the critical path.
 *
 *   $ ./braid_explorer [app] [problem_size] [iterations]
 *
 * where app is one of: gse, sq, sha1, im-semi, im-full.
 */

#include <cstring>
#include <iostream>

#include "common/logging.h"
#include "apps/apps.h"
#include "braid/scheduler.h"
#include "circuit/decompose.h"
#include "common/table.h"

namespace {

using namespace qsurf;

apps::AppKind
parseApp(const char *name)
{
    if (!std::strcmp(name, "gse"))
        return apps::AppKind::GSE;
    if (!std::strcmp(name, "sq"))
        return apps::AppKind::SQ;
    if (!std::strcmp(name, "sha1"))
        return apps::AppKind::SHA1;
    if (!std::strcmp(name, "im-semi"))
        return apps::AppKind::IsingSemi;
    if (!std::strcmp(name, "im-full"))
        return apps::AppKind::IsingFull;
    fatal("unknown app '", name,
          "' (expected gse|sq|sha1|im-semi|im-full)");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsurf;

    apps::AppKind kind =
        argc > 1 ? parseApp(argv[1]) : apps::AppKind::IsingSemi;
    apps::GenOptions gopts;
    gopts.problem_size = argc > 2 ? std::atoi(argv[2]) : 36;
    gopts.max_iterations = argc > 3 ? std::atoi(argv[3]) : 3;

    circuit::Circuit circ =
        circuit::decompose(apps::generate(kind, gopts));
    std::cout << "Workload: " << apps::appSpec(kind).name << ", "
              << circ.numQubits() << " logical qubits, "
              << circ.size() << " Clifford+T ops\n\n";

    Table t("Policy sweep (code distance 5)");
    t.header({"policy", "what it adds", "sched cycles", "sched/CP",
              "mesh util"});
    const char *desc[] = {
        "nothing (events in program order)",
        "event interleaving",
        "+ interaction-aware layout",
        "+ criticality priority",
        "+ longest-braid priority",
        "+ closing-braids-first priority",
        "all combined (Section 6.3)",
    };
    for (int p = 0; p < braid::num_policies; ++p) {
        braid::BraidOptions opts;
        opts.code_distance = 5;
        auto r = braid::scheduleBraids(
            circ, static_cast<braid::Policy>(p), opts);
        t.addRow(braid::policyName(static_cast<braid::Policy>(p)),
                 desc[p], r.schedule_cycles,
                 Table::fixed(r.ratio(), 2),
                 Table::fixed(r.mesh_utilization, 3));
    }
    t.print(std::cout);
    return 0;
}
