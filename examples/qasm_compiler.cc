/**
 * @file
 * QASM compiler driver: read a QASM file (or stdin), flatten its
 * module hierarchy, decompose to Clifford+T, and print frontend
 * statistics plus the backend comparison — a miniature ScaffCC-style
 * command-line tool over the qsurf toolflow.
 *
 *   $ ./qasm_compiler program.qasm
 *   $ echo 'qbit q[2]; H q[0]; CNOT q[0], q[1];' | ./qasm_compiler
 *
 * Pass --trace=PATH and/or --metrics=PATH to also write the
 * observability sinks for the backend comparison (see README,
 * "Observability").  Pass --defects=DENSITY (and optionally
 * --defect-seed=N) to run on a randomly damaged fabric, or
 * --defect-spec=PATH to load an explicit device defect map (see
 * README, "Faulty fabrics").
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "circuit/decompose.h"
#include "common/logging.h"
#include "common/table.h"
#include "qasm/flatten.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "toolflow/toolflow.h"

int
main(int argc, char **argv)
{
    using namespace qsurf;

    toolflow::Config config;
    std::string input_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.compare(0, 8, "--trace=") == 0) {
            config.trace_path = arg.substr(8);
        } else if (arg.compare(0, 10, "--metrics=") == 0) {
            config.metrics_path = arg.substr(10);
        } else if (arg.compare(0, 10, "--defects=") == 0) {
            config.defect_density = std::stod(arg.substr(10));
        } else if (arg.compare(0, 14, "--defect-seed=") == 0) {
            config.defect_seed = std::stoull(arg.substr(14));
        } else if (arg.compare(0, 14, "--defect-spec=") == 0) {
            std::ifstream spec(arg.substr(14));
            if (!spec) {
                std::cerr << "cannot open " << arg.substr(14)
                          << "\n";
                return 1;
            }
            std::ostringstream buf;
            buf << spec.rdbuf();
            config.defect_spec = buf.str();
        } else if (input_path.empty()) {
            input_path = arg;
        } else {
            std::cerr << "usage: qasm_compiler [--trace=PATH] "
                         "[--metrics=PATH] [--defects=DENSITY] "
                         "[--defect-seed=N] [--defect-spec=PATH] "
                         "[program.qasm]\n";
            return 2;
        }
    }

    std::string source;
    if (!input_path.empty()) {
        std::ifstream in(input_path);
        if (!in) {
            std::cerr << "cannot open " << input_path << "\n";
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
    } else {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        source = buf.str();
    }

    try {
        qasm::Program prog = qasm::parse(source);
        circuit::Circuit flat = qasm::flatten(prog);
        circuit::Circuit clifford_t = circuit::decompose(flat);

        Table front("Frontend");
        front.header({"stage", "qubits", "gates"});
        front.addRow("flattened", flat.numQubits(), flat.size());
        front.addRow("Clifford+T", clifford_t.numQubits(),
                     clifford_t.size());
        front.print(std::cout);

        std::cout << "Flattened QASM:\n"
                  << qasm::writeString(flat) << "\n";

        toolflow::Report report = toolflow::run(flat, config);
        std::cout << toolflow::format(report);
    } catch (const qsurf::FatalError &e) {
        std::cerr << "compilation failed: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
