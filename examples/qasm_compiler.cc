/**
 * @file
 * QASM compiler driver: read a QASM file (or stdin), flatten its
 * module hierarchy, decompose to Clifford+T, and print frontend
 * statistics plus the backend comparison — a miniature ScaffCC-style
 * command-line tool over the qsurf toolflow.
 *
 *   $ ./qasm_compiler program.qasm
 *   $ echo 'qbit q[2]; H q[0]; CNOT q[0], q[1];' | ./qasm_compiler
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/decompose.h"
#include "common/logging.h"
#include "common/table.h"
#include "qasm/flatten.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "toolflow/toolflow.h"

int
main(int argc, char **argv)
{
    using namespace qsurf;

    std::string source;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
    } else {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        source = buf.str();
    }

    try {
        qasm::Program prog = qasm::parse(source);
        circuit::Circuit flat = qasm::flatten(prog);
        circuit::Circuit clifford_t = circuit::decompose(flat);

        Table front("Frontend");
        front.header({"stage", "qubits", "gates"});
        front.addRow("flattened", flat.numQubits(), flat.size());
        front.addRow("Clifford+T", clifford_t.numQubits(),
                     clifford_t.size());
        front.print(std::cout);

        std::cout << "Flattened QASM:\n"
                  << qasm::writeString(flat) << "\n";

        toolflow::Report report = toolflow::run(flat);
        std::cout << toolflow::format(report);
    } catch (const qsurf::FatalError &e) {
        std::cerr << "compilation failed: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
