/**
 * @file
 * Traced end-to-end run: the observability demo.
 *
 *   $ ./traced_run --trace=trace.json --metrics=metrics.json
 *
 * Generates one ground-state-estimation workload, runs it through
 * the toolflow on the mixed-scheme hybrid backend (override with
 * --backend, repeatable), and writes the three observability sinks:
 * a Chrome trace-event JSON (load it with Perfetto's "Open trace
 * file"), a per-link mesh congestion heatmap next to it
 * ("<stem>.heatmap.json"), and the aggregate counter/histogram
 * registry.  Results are bit-identical to the same run untraced.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/apps.h"
#include "common/logging.h"
#include "engine/registry.h"
#include "obs/trace.h"
#include "toolflow/toolflow.h"

namespace {

int
usage()
{
    std::cerr
        << "usage: traced_run [--trace=PATH] [--metrics=PATH]\n"
           "                  [--backend=NAME]... [--size=N] "
           "[--d=D] [--smoke]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsurf;

    toolflow::Config config;
    config.trace_path = "trace.json";
    config.metrics_path = "metrics.json";
    config.force_distance = 5;
    int size = 12;
    bool backend_set = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0
                ? arg.c_str() + n
                : nullptr;
        };
        if (const char *v = value("--trace=")) {
            config.trace_path = v;
        } else if (const char *v = value("--metrics=")) {
            config.metrics_path = v;
        } else if (const char *v = value("--backend=")) {
            config.backends.emplace_back(v);
            backend_set = true;
        } else if (const char *v = value("--size=")) {
            size = std::atoi(v);
        } else if (const char *v = value("--d=")) {
            config.force_distance = std::atoi(v);
        } else if (arg == "--smoke") {
            size = 8;
            config.force_distance = 3;
        } else {
            return usage();
        }
    }
    if (!backend_set)
        config.backends = {engine::backends::hybrid_mixed};
    if (size < 2) {
        std::cerr << "--size must be >= 2\n";
        return 2;
    }

    try {
        circuit::Circuit circ =
            apps::generate(apps::AppKind::GSE, {size, 2});
        toolflow::Report report = toolflow::run(circ, config);
        std::cout << toolflow::format(report);
        std::cout << "\nwrote " << config.trace_path << " (Perfetto), "
                  << obs::derivedPath(config.trace_path, "heatmap")
                  << " and " << config.metrics_path << "\n";
    } catch (const qsurf::FatalError &e) {
        std::cerr << "traced run failed: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
